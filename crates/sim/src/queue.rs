//! Integer-keyed event queues: the bucket "ladder" behind the hot
//! scheduling path, and the binary-heap reference it is checked against.
//!
//! # Why a bucket queue works here
//!
//! Both executors in this crate schedule events whose keys satisfy two
//! structural properties (see the proofs sketched in DESIGN.md):
//!
//! 1. **Monotone pushes.** Every push happens while the queue's clock
//!    sits at the last popped time `now`, and schedules an arrival
//!    strictly greater than `now` (delays are quantized to ≥ 1 tick, and
//!    the per-channel FIFO floor is itself a previously scheduled
//!    arrival).
//! 2. **Bounded span.** Every pending arrival lies in `(now, now + W]`
//!    where `W` is the maximum edge weight: a fresh arrival is at most
//!    `now + w(e) ≤ now + W`, and a FIFO-floored arrival *equals* an
//!    earlier arrival, which is within the bound by induction.
//!
//! Under these two properties a circular array of `capacity ≥ W + 1`
//! buckets indexed by `time mod capacity` holds every pending event with
//! **at most one distinct timestamp per bucket**, so push is O(1) and
//! pop is a bitmap scan. The global send-order sequence number makes
//! same-time pops identical to the heap's `(time, seq)` order: pushes
//! carry strictly increasing `seq`, so tail-append order inside a
//! bucket's list *is* seq order.
//!
//! Weights larger than the bucket horizon (the capacity is capped — see
//! [`BucketQueue::MAX_CAPACITY`]) fall back to an **overflow heap**:
//! entries beyond `cur + capacity` wait there and are merged into the
//! window, in seq order, before any pop that could overtake them. This
//! keeps the queue exact for arbitrarily heavy edges at a small cost on
//! that (rare) path. The window is auto-sized from the workload's
//! maximum delay ([`BucketQueue::new`]), so overflow only engages past
//! `W ≥ MAX_CAPACITY`; [`BucketQueue::overflow_pushes`] counts the
//! entries that took it, and the regression tests pin that a `W = 10⁴`
//! workload stays entirely inside the window.
//!
//! Same-bucket events additionally drain through a **hot-bucket fast
//! path**: after a pop leaves further entries at the same timestamp,
//! subsequent pops take them straight off that bucket's list — no
//! bitmap re-scan, no overflow probe — until the tick is exhausted.
//! This is what makes batched same-tick delivery (wide simultaneous
//! fan-outs on million-edge graphs) O(1) per event instead of O(scan).
//!
//! [`HeapQueue`] is the retained `BinaryHeap` implementation — the
//! differential reference the proptests and the core microbench run the
//! bucket queue against (`Simulator::core(CoreKind::Heap)`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled entry: `(arrival time, global send sequence, payload
/// slot)`. Ordering is lexicographic — time first, then seq — and the
/// slot never participates in ordering decisions.
pub type QueueEntry = (u64, u64, usize);

/// A slab node: one pending entry plus the index of its bucket
/// successor ([`NIL`]-terminated).
#[derive(Clone, Copy, Debug)]
struct Node {
    entry: QueueEntry,
    next: u32,
}

/// Sentinel "no node" index for the intrusive bucket lists.
const NIL: u32 = u32::MAX;

/// Circular bucket ("calendar") queue with exact `(time, seq)` pop
/// order, an O(1) amortized push, and a two-level-bitmap pop scan.
///
/// Buckets are intrusive singly-linked lists threaded through one slab
/// `Vec` — a deliberate choice over `Vec<Vec<_>>`: adversary evaluation
/// runs thousands of *short* simulations, and per-bucket vectors cost
/// one malloc per first-touched bucket (≈ one per event on a cold run).
/// The slab makes the whole queue a handful of flat allocations that a
/// pooled simulator reuses wholesale.
///
/// See the [module docs](self) for the invariants this relies on; they
/// are asserted in debug builds and pinned against [`HeapQueue`] and the
/// baseline simulator by `tests/flat_core_differential.rs`.
#[derive(Debug)]
pub struct BucketQueue {
    /// `head[t & mask]` / `tail[t & mask]` delimit the pending entries
    /// of exactly one timestamp at any moment, linked in ascending seq
    /// order through [`BucketQueue::nodes`].
    head: Vec<u32>,
    tail: Vec<u32>,
    mask: u64,
    /// Bit `b` set ⇔ bucket `b` is non-empty.
    l0: Vec<u64>,
    /// Bit `w` set ⇔ `l0[w] != 0`.
    l1: Vec<u64>,
    /// Bit `w` set ⇔ `l1[w] != 0`. The capacity cap is 2¹⁸ = 64·64·64
    /// buckets, so one third-level word always suffices.
    l2: u64,
    /// Bucket still holding entries at exactly `cur` after the last
    /// pop, or [`NIL`]: the same-tick fast path drains it directly —
    /// no pending entry (bucketed or overflow) can precede its head.
    hot: u32,
    /// Entries currently threaded through the buckets.
    bucketed: usize,
    /// Slab of list nodes; free slots are chained through their own
    /// `next` fields starting at [`BucketQueue::free_head`], so the slab
    /// grows to the peak number of pending entries and stays there
    /// without a side allocation.
    nodes: Vec<Node>,
    free_head: u32,
    /// The last popped time; every pending entry is ≥ `cur` and every
    /// bucketed entry is `< cur + capacity`.
    cur: u64,
    /// Entries scheduled at or beyond `cur + capacity`, merged into the
    /// window lazily as `cur` advances.
    overflow: BinaryHeap<Reverse<QueueEntry>>,
    /// Pushes that landed beyond the window since the last clear.
    overflow_pushes: u64,
}

// Hand-written so `clone_from` reuses every flat allocation (all
// element types are `Copy`, so the field copies are memcpys): the
// checkpoint-resume path overwrites a pooled queue with a snapshotted
// one per candidate, and the derived `clone_from` would reallocate.
impl Clone for BucketQueue {
    fn clone(&self) -> Self {
        BucketQueue {
            head: self.head.clone(),
            tail: self.tail.clone(),
            mask: self.mask,
            l0: self.l0.clone(),
            l1: self.l1.clone(),
            l2: self.l2,
            hot: self.hot,
            bucketed: self.bucketed,
            nodes: self.nodes.clone(),
            free_head: self.free_head,
            cur: self.cur,
            overflow: self.overflow.clone(),
            overflow_pushes: self.overflow_pushes,
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.head.clone_from(&src.head);
        self.tail.clone_from(&src.tail);
        self.mask = src.mask;
        self.l0.clone_from(&src.l0);
        self.l1.clone_from(&src.l1);
        self.l2 = src.l2;
        self.hot = src.hot;
        self.bucketed = src.bucketed;
        self.nodes.clone_from(&src.nodes);
        self.free_head = src.free_head;
        self.cur = src.cur;
        self.overflow.clone_from(&src.overflow);
        self.overflow_pushes = src.overflow_pushes;
    }
}

impl BucketQueue {
    /// Hard cap on the bucket array: 2¹⁸ buckets (≈ 2 MiB of headers at
    /// full size — but queues are auto-sized from the workload's
    /// maximum delay, so only runs that need the full window allocate
    /// it). The previous cap of 2⁸ silently routed every workload with
    /// `W > 256` through the overflow heap, turning the O(1) hot path
    /// into a `BinaryHeap` on exactly the heavy-weighted graphs the
    /// cost-sensitive analysis cares about; 2¹⁸ covers the scale-tier
    /// weight distributions outright, and delays past the cap still
    /// ride the overflow heap and merge back in exactly
    /// ([`BucketQueue::overflow_pushes`] counts them). The cap is
    /// 64 · 64 · 64, so the three-level bitmap's top level is a single
    /// `u64` word.
    pub const MAX_CAPACITY: usize = 1 << 18;

    /// Smallest bucket array worth the bitmap bookkeeping.
    pub const MIN_CAPACITY: usize = 1 << 4;

    /// Creates a queue sized for delays up to `max_delay` ticks: the
    /// capacity is the next power of two above `max_delay + 1`, clamped
    /// into `[MIN_CAPACITY, MAX_CAPACITY]`, so the common case (maximum
    /// edge weight below the cap) never touches the overflow heap.
    pub fn new(max_delay: u64) -> Self {
        Self::with_capacity(Self::capacity_for(max_delay))
    }

    /// The bucket count [`BucketQueue::new`] would allocate for
    /// `max_delay` — lets pools decide whether an existing queue's
    /// window already suffices.
    pub fn capacity_for(max_delay: u64) -> usize {
        (max_delay.saturating_add(1).min(Self::MAX_CAPACITY as u64) as usize)
            .next_power_of_two()
            .clamp(Self::MIN_CAPACITY, Self::MAX_CAPACITY)
    }

    /// Creates a queue with an explicit bucket count (rounded up to a
    /// power of two and clamped into `[MIN_CAPACITY, MAX_CAPACITY]`) —
    /// mainly for tests that want to force the overflow path.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity
            .next_power_of_two()
            .clamp(Self::MIN_CAPACITY, Self::MAX_CAPACITY);
        let l0_words = capacity.div_ceil(64);
        BucketQueue {
            head: vec![NIL; capacity],
            tail: vec![NIL; capacity],
            mask: capacity as u64 - 1,
            l0: vec![0; l0_words],
            l1: vec![0; l0_words.div_ceil(64)],
            l2: 0,
            hot: NIL,
            bucketed: 0,
            nodes: Vec::new(),
            free_head: NIL,
            cur: 0,
            overflow: BinaryHeap::new(),
            overflow_pushes: 0,
        }
    }

    /// Takes a slab slot for `entry`, recycling freed slots first.
    #[inline]
    fn alloc(&mut self, entry: QueueEntry) -> u32 {
        let node = Node { entry, next: NIL };
        if self.free_head != NIL {
            let i = self.free_head;
            self.free_head = self.nodes[i as usize].next;
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Number of buckets (a power of two).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.mask as usize + 1
    }

    /// Total pending entries (bucketed + overflow).
    #[inline]
    pub fn len(&self) -> usize {
        self.bucketed + self.overflow.len()
    }

    /// Whether no entries are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pushes that landed beyond the bucket window and took
    /// the overflow-heap path since the last
    /// [`clear`](BucketQueue::clear). Stays zero for any workload whose
    /// maximum delay fits the auto-sized window — the scale regression
    /// pins this for `W = 10⁴`.
    #[inline]
    pub fn overflow_pushes(&self) -> u64 {
        self.overflow_pushes
    }

    /// Removes every pending entry and rewinds the clock to zero,
    /// keeping all allocations (slab, bitmaps, overflow) for reuse.
    pub fn clear(&mut self) {
        for (w, &word) in self.l0.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = (w << 6) | bits.trailing_zeros() as usize;
                self.head[b] = NIL;
                self.tail[b] = NIL;
                bits &= bits - 1;
            }
        }
        self.l0.fill(0);
        self.l1.fill(0);
        self.l2 = 0;
        self.hot = NIL;
        self.bucketed = 0;
        self.nodes.clear();
        self.free_head = NIL;
        self.cur = 0;
        self.overflow.clear();
        self.overflow_pushes = 0;
    }

    #[inline]
    fn set_bit(&mut self, b: usize) {
        let w0 = b >> 6;
        self.l0[w0] |= 1 << (b & 63);
        self.l1[w0 >> 6] |= 1 << (w0 & 63);
        self.l2 |= 1 << (w0 >> 6);
    }

    #[inline]
    fn clear_bit(&mut self, b: usize) {
        let w0 = b >> 6;
        self.l0[w0] &= !(1 << (b & 63));
        if self.l0[w0] == 0 {
            let w1 = w0 >> 6;
            self.l1[w1] &= !(1 << (w0 & 63));
            if self.l1[w1] == 0 {
                self.l2 &= !(1 << w1);
            }
        }
    }

    /// Schedules `(time, seq, slot)`.
    ///
    /// `time` must be at least the last popped time, and `seq` strictly
    /// greater than every previously pushed seq (both debug-asserted) —
    /// exactly what the simulator's dispatch loop guarantees.
    pub fn push(&mut self, time: u64, seq: u64, slot: usize) {
        debug_assert!(
            time >= self.cur,
            "bucket queue requires monotone pushes: {time} < clock {}",
            self.cur
        );
        if time - self.cur > self.mask {
            self.overflow.push(Reverse((time, seq, slot)));
            self.overflow_pushes += 1;
            return;
        }
        let b = (time & self.mask) as usize;
        let idx = self.alloc((time, seq, slot));
        let t = self.tail[b];
        if t == NIL {
            self.head[b] = idx;
            self.set_bit(b);
        } else {
            debug_assert!(
                {
                    let (pt, ps, _) = self.nodes[t as usize].entry;
                    pt == time && ps < seq
                },
                "bucket {b} would mix timestamps or break seq order"
            );
            self.nodes[t as usize].next = idx;
        }
        self.tail[b] = idx;
        self.bucketed += 1;
    }

    /// Merges every overflow entry that now falls inside the bucket
    /// window `[cur, cur + capacity)`. Insertion keeps per-bucket seq
    /// order (overflow entries may pre-date bucketed ones).
    fn merge_overflow(&mut self) {
        while let Some(&Reverse((t, _, _))) = self.overflow.peek() {
            if t - self.cur > self.mask {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked entry");
            let b = (t & self.mask) as usize;
            let idx = self.alloc(e);
            if self.head[b] == NIL {
                self.head[b] = idx;
                self.tail[b] = idx;
                self.set_bit(b);
            } else {
                debug_assert_eq!(self.nodes[self.head[b] as usize].entry.0, t);
                // Walk to the first node with a larger seq and splice in
                // front of it; overflow entries may pre-date bucketed
                // ones, but this path is rare by construction.
                let mut prev = NIL;
                let mut at = self.head[b];
                while at != NIL && self.nodes[at as usize].entry.1 < e.1 {
                    prev = at;
                    at = self.nodes[at as usize].next;
                }
                self.nodes[idx as usize].next = at;
                if prev == NIL {
                    self.head[b] = idx;
                } else {
                    self.nodes[prev as usize].next = idx;
                }
                if at == NIL {
                    self.tail[b] = idx;
                }
            }
            self.bucketed += 1;
        }
    }

    /// First non-empty bucket at circular distance ≥ 0 from `start`.
    /// Must only be called while some bucket is non-empty.
    fn next_set_from(&self, start: usize) -> usize {
        let w0 = start >> 6;
        let within = self.l0[w0] & (u64::MAX << (start & 63));
        if within != 0 {
            return (w0 << 6) | within.trailing_zeros() as usize;
        }
        let w0 = self.next_word_from(w0 + 1);
        (w0 << 6) | self.l0[w0].trailing_zeros() as usize
    }

    /// First non-empty `l0` word at circular index ≥ `start`, via the
    /// `l1`/`l2` summaries. `start == l0.len()` wraps to zero. Must only
    /// be called while some bucket is non-empty.
    fn next_word_from(&self, start: usize) -> usize {
        let start = if start >= self.l0.len() { 0 } else { start };
        let w1 = start >> 6;
        let within = self.l1[w1] & (u64::MAX << (start & 63));
        if within != 0 {
            return (w1 << 6) | within.trailing_zeros() as usize;
        }
        // Later `l1` words via `l2`, else wrap to the earliest set word
        // (which may be `w1` itself, with only pre-`start` bits — those
        // come last in circular order, exactly as the wrap implies).
        let hi = if w1 + 1 < 64 { u64::MAX << (w1 + 1) } else { 0 };
        let later = self.l2 & hi;
        let w = if later != 0 {
            later.trailing_zeros() as usize
        } else {
            debug_assert_ne!(self.l2, 0, "scan on an empty bucket queue");
            self.l2.trailing_zeros() as usize
        };
        (w << 6) | self.l1[w].trailing_zeros() as usize
    }

    /// The timestamp the next [`BucketQueue::pop`] will return, without
    /// consuming it.
    ///
    /// A pure peek: it must NOT advance the clock the way [`pop`]'s
    /// window preparation does, because callers (the lock-step runner)
    /// peek ahead and may still schedule sends from an earlier wake-up
    /// pulse. The bucket scan alone is not enough — a pop advances the
    /// window, and an overflow entry the window now covers (but which
    /// [`pop`] has not merged yet) can undercut every bucketed time — so
    /// the peek is the minimum over both sides.
    ///
    /// [`pop`]: BucketQueue::pop
    pub fn next_time(&mut self) -> Option<u64> {
        let bucketed = (self.bucketed > 0).then(|| {
            let b = self.next_set_from((self.cur & self.mask) as usize);
            self.nodes[self.head[b] as usize].entry.0
        });
        let overflowed = self.overflow.peek().map(|&Reverse((t, _, _))| t);
        match (bucketed, overflowed) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Makes the bucket window authoritative: jumps the clock onto the
    /// overflow head when the buckets ran dry, then merges every
    /// overflow entry the window now covers. Returns `None` when the
    /// queue is empty.
    fn prepare_window(&mut self) -> Option<()> {
        if self.bucketed == 0 {
            let &Reverse((t, _, _)) = self.overflow.peek()?;
            self.cur = t;
        }
        self.merge_overflow();
        Some(())
    }

    /// Advances the window origin to `t` without popping — for executors
    /// whose clock can jump ahead of the last delivery (the lock-step
    /// runner's wake-up pulses). Valid only when no pending entry is
    /// earlier than `t` (debug-asserted); entries the enlarged window now
    /// covers migrate out of the overflow heap.
    pub fn advance_to(&mut self, t: u64) {
        if t <= self.cur {
            return;
        }
        debug_assert!(self.next_time().is_none_or(|nt| nt >= t));
        self.hot = NIL;
        self.cur = t;
        self.merge_overflow();
    }

    /// Removes and returns the minimum entry by `(time, seq)`.
    pub fn pop(&mut self) -> Option<QueueEntry> {
        let b = if self.hot != NIL {
            // Same-tick fast path: the previous pop left entries at
            // exactly `cur` in this bucket. Nothing can precede them —
            // any overflow entry at `cur` would have been merged before
            // that pop (its span from the pre-pop clock was within the
            // window, like the popped entry's), every other bucket holds
            // strictly later times, and same-tick pushes append behind
            // the tail in seq order. So: no overflow probe, no scan.
            self.hot as usize
        } else {
            // Window preparation only matters while overflow entries
            // exist — skipping it keeps the common path branch-cheap.
            if !self.overflow.is_empty() {
                self.prepare_window()?;
            } else if self.bucketed == 0 {
                return None;
            }
            self.next_set_from((self.cur & self.mask) as usize)
        };
        let h = self.head[b];
        let Node { entry, next } = self.nodes[h as usize];
        self.head[b] = next;
        if next == NIL {
            self.tail[b] = NIL;
            self.clear_bit(b);
        }
        self.nodes[h as usize].next = self.free_head;
        self.free_head = h;
        self.bucketed -= 1;
        self.cur = entry.0;
        self.hot = if next == NIL { NIL } else { b as u32 };
        Some(entry)
    }

    /// Every pending entry in `(time, seq)` order — the checkpoint
    /// serialization of the queue.
    pub fn snapshot_sorted(&self) -> Vec<QueueEntry> {
        let mut out: Vec<QueueEntry> = Vec::with_capacity(self.len());
        for (w, &word) in self.l0.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = (w << 6) | bits.trailing_zeros() as usize;
                let mut at = self.head[b];
                while at != NIL {
                    out.push(self.nodes[at as usize].entry);
                    at = self.nodes[at as usize].next;
                }
                bits &= bits - 1;
            }
        }
        out.extend(self.overflow.iter().map(|&Reverse(e)| e));
        out.sort_unstable();
        out
    }

    /// Replaces the contents with `entries` (must be `(time, seq)`
    /// sorted, as produced by [`BucketQueue::snapshot_sorted`]) and sets
    /// the clock to the earliest pending time.
    pub fn restore(&mut self, entries: &[QueueEntry]) {
        self.clear();
        if let Some(&(t0, _, _)) = entries.first() {
            self.cur = t0;
        }
        for &(t, s, slot) in entries {
            self.push(t, s, slot);
        }
    }
}

/// The retained `BinaryHeap` scheduling queue — the reference
/// implementation [`BucketQueue`] is differentially tested against, and
/// the core behind [`CoreKind::Heap`](crate::runtime::CoreKind).
#[derive(Debug, Default)]
pub struct HeapQueue {
    heap: BinaryHeap<Reverse<QueueEntry>>,
}

// Hand-written for a buffer-reusing `clone_from`, as on [`BucketQueue`].
impl Clone for HeapQueue {
    fn clone(&self) -> Self {
        HeapQueue {
            heap: self.heap.clone(),
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.heap.clone_from(&src.heap);
    }
}

impl HeapQueue {
    /// Creates an empty heap queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total pending entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes every pending entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Schedules `(time, seq, slot)`.
    #[inline]
    pub fn push(&mut self, time: u64, seq: u64, slot: usize) {
        self.heap.push(Reverse((time, seq, slot)));
    }

    /// The timestamp the next pop will return.
    pub fn next_time(&mut self) -> Option<u64> {
        self.heap.peek().map(|&Reverse((t, _, _))| t)
    }

    /// Removes and returns the minimum entry by `(time, seq)`.
    #[inline]
    pub fn pop(&mut self) -> Option<QueueEntry> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Every pending entry in `(time, seq)` order.
    pub fn snapshot_sorted(&self) -> Vec<QueueEntry> {
        let mut out: Vec<QueueEntry> = self.heap.iter().map(|&Reverse(e)| e).collect();
        out.sort_unstable();
        out
    }

    /// Replaces the contents with `entries`.
    pub fn restore(&mut self, entries: &[QueueEntry]) {
        self.heap.clear();
        self.heap.extend(entries.iter().map(|&e| Reverse(e)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Drives both queues with an identical, simulator-shaped workload
    /// (monotone pushes within a bounded span) and checks every pop.
    fn differential(mut max_delay: u64, capacity: usize, seed: u64, ops: usize) {
        max_delay = max_delay.max(1);
        let mut bucket = BucketQueue::with_capacity(capacity);
        let mut heap = HeapQueue::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seq = 0u64;
        let mut now = 0u64;
        for i in 0..ops {
            // A burst of pushes from the current clock...
            for _ in 0..rng.random_range(0..4u64) {
                let t = now + rng.random_range(1..=max_delay);
                bucket.push(t, seq, i);
                heap.push(t, seq, i);
                seq += 1;
            }
            // ...then pop one event, as the run loop does.
            assert_eq!(bucket.next_time(), heap.next_time());
            let (b, h) = (bucket.pop(), heap.pop());
            assert_eq!(b, h, "divergence at op {i} (seed {seed})");
            if let Some((t, _, _)) = b {
                now = t;
            }
            assert_eq!(bucket.len(), heap.len());
        }
        // Drain to empty — still identical.
        loop {
            let (b, h) = (bucket.pop(), heap.pop());
            assert_eq!(b, h);
            if b.is_none() {
                break;
            }
        }
        assert!(bucket.is_empty());
    }

    #[test]
    fn matches_heap_when_span_fits_window() {
        for seed in 0..8 {
            differential(60, 64, seed, 500);
        }
    }

    #[test]
    fn matches_heap_through_overflow() {
        // Delays up to 500 on a 16-bucket window: almost everything
        // takes the overflow path and must still pop in exact order.
        for seed in 0..8 {
            differential(500, 16, seed, 400);
        }
    }

    #[test]
    fn same_time_pops_in_seq_order() {
        let mut q = BucketQueue::with_capacity(64);
        for s in 0..10 {
            q.push(5, s, s as usize);
        }
        for s in 0..10 {
            assert_eq!(q.pop(), Some((5, s, s as usize)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_entry_older_than_bucketed_pops_first() {
        // seq 0 lands far out (overflow), seq 1 lands at the same time
        // but is pushed later from a closer clock: the overflow entry
        // must still pop first.
        let mut q = BucketQueue::with_capacity(16);
        q.push(100, 0, 0); // overflow (span 100 > 15)
        q.push(1, 2, 2);
        assert_eq!(q.pop(), Some((1, 2, 2))); // clock now 1
        q.push(100, 3, 3); // within a later window after jumps
        q.push(90, 4, 4); // overflow
        assert_eq!(q.pop(), Some((90, 4, 4)));
        assert_eq!(q.pop(), Some((100, 0, 0)));
        assert_eq!(q.pop(), Some((100, 3, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_sees_unmerged_overflow_entries_and_keeps_the_clock_still() {
        // A pop advances the window, after which a not-yet-merged
        // overflow entry may undercut every bucketed time: peeking must
        // report it, and must not advance the clock — the lock-step
        // runner peeks ahead and may still push from an earlier pulse.
        let mut q = BucketQueue::with_capacity(16);
        q.push(5, 0, 0);
        q.push(17, 1, 1); // 17 - 0 > 15: overflow
        assert_eq!(q.pop(), Some((5, 0, 0))); // clock 5; 17 unmerged
        q.push(19, 2, 2); // bucketed: 19 - 5 <= 15
        assert_eq!(q.next_time(), Some(17));
        // The peek must not have committed the clock to 17: a push at
        // 6 (> the popped time 5) must still be admissible.
        q.push(6, 3, 3);
        assert_eq!(q.pop(), Some((6, 3, 3)));
        assert_eq!(q.pop(), Some((17, 1, 1)));
        assert_eq!(q.pop(), Some((19, 2, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut q = BucketQueue::with_capacity(32);
        let mut rng = StdRng::seed_from_u64(9);
        let mut now = 0;
        for s in 0..50u64 {
            q.push(now + rng.random_range(1..=200u64), s, s as usize);
            if s % 3 == 0 {
                if let Some((t, _, _)) = q.pop() {
                    now = t;
                }
            }
        }
        let snap = q.snapshot_sorted();
        assert!(snap.windows(2).all(|w| w[0] < w[1]), "snapshot sorted");
        let mut restored = BucketQueue::with_capacity(32);
        restored.restore(&snap);
        let mut heap = HeapQueue::new();
        heap.restore(&snap);
        assert_eq!(restored.len(), heap.len());
        loop {
            let (a, b) = (restored.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn clear_keeps_queue_reusable() {
        let mut q = BucketQueue::new(100);
        q.push(5, 0, 0);
        q.push(900, 1, 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push(3, 0, 7);
        assert_eq!(q.pop(), Some((3, 0, 7)));
    }

    #[test]
    fn capacity_is_clamped_and_sized_by_delay() {
        assert_eq!(BucketQueue::new(0).capacity(), BucketQueue::MIN_CAPACITY);
        assert_eq!(BucketQueue::new(100).capacity(), 128);
        assert_eq!(BucketQueue::new(10_000).capacity(), 16_384);
        assert_eq!(
            BucketQueue::new(u64::MAX).capacity(),
            BucketQueue::MAX_CAPACITY
        );
    }

    #[test]
    fn matches_heap_on_a_wide_window() {
        // Delays up to 10⁵ exercise the three-level bitmap with many
        // l1 words (2¹⁷ buckets → 2048 l0 words → 32 l1 words).
        for seed in 0..4 {
            differential(100_000, 1 << 17, seed, 300);
        }
    }

    #[test]
    fn w_10k_workload_stays_out_of_overflow() {
        // Regression for the former 2⁸ capacity cap, which silently
        // routed every W > 256 workload through the overflow heap: an
        // auto-sized queue for W = 10⁴ must keep every push bucketed
        // and still pop in exact (time, seq) order.
        let mut q = BucketQueue::new(10_000);
        let mut heap = HeapQueue::new();
        let mut rng = StdRng::seed_from_u64(42);
        let mut now = 0u64;
        let mut seq = 0u64;
        for _ in 0..2_000 {
            for _ in 0..rng.random_range(0..3u64) {
                let t = now + rng.random_range(1..=10_000u64);
                q.push(t, seq, seq as usize);
                heap.push(t, seq, seq as usize);
                seq += 1;
            }
            let (b, h) = (q.pop(), heap.pop());
            assert_eq!(b, h);
            if let Some((t, _, _)) = b {
                now = t;
            }
        }
        assert_eq!(q.overflow_pushes(), 0, "W = 10⁴ must fit the window");
    }

    #[test]
    fn overflow_pushes_counts_beyond_window_entries_and_clear_resets() {
        let mut q = BucketQueue::with_capacity(16);
        q.push(5, 0, 0); // bucketed
        q.push(100, 1, 1); // beyond the 16-tick window
        q.push(200, 2, 2); // beyond the window
        assert_eq!(q.overflow_pushes(), 2);
        // Draining merges them back but does not rewrite history.
        while q.pop().is_some() {}
        assert_eq!(q.overflow_pushes(), 2);
        q.clear();
        assert_eq!(q.overflow_pushes(), 0);
    }

    #[test]
    fn same_tick_pushes_interleave_with_hot_drain() {
        // The hot-bucket fast path must still honor seq order when the
        // executor pushes more same-tick events mid-drain (zero-delay
        // fan-out replies land at the tick being delivered).
        let mut q = BucketQueue::with_capacity(64);
        q.push(5, 0, 0);
        q.push(5, 1, 1);
        assert_eq!(q.pop(), Some((5, 0, 0))); // leaves seq 1 hot
        q.push(5, 2, 2); // same tick, behind seq 1
        q.push(6, 3, 3); // later tick, different bucket
        assert_eq!(q.next_time(), Some(5));
        assert_eq!(q.pop(), Some((5, 1, 1)));
        assert_eq!(q.pop(), Some((5, 2, 2)));
        assert_eq!(q.pop(), Some((6, 3, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn hot_path_survives_snapshot_and_clone() {
        let mut q = BucketQueue::with_capacity(32);
        for s in 0..6u64 {
            q.push(9, s, s as usize);
        }
        assert_eq!(q.pop(), Some((9, 0, 0))); // hot bucket with 5 left
        let snap = q.snapshot_sorted();
        assert_eq!(snap.len(), 5);
        let mut cloned = q.clone();
        for s in 1..6u64 {
            assert_eq!(q.pop(), Some((9, s, s as usize)));
            assert_eq!(cloned.pop(), Some((9, s, s as usize)));
        }
        assert_eq!(q.pop(), None);
        let mut restored = BucketQueue::with_capacity(32);
        restored.restore(&snap);
        for s in 1..6u64 {
            assert_eq!(restored.pop(), Some((9, s, s as usize)));
        }
    }
}
