//! Lock-step weighted synchronous executor.
//!
//! In the paper's synchronous weighted network, a message sent at pulse
//! `p` over edge `e` is received exactly at pulse `p + w(e)`. This module
//! executes [`SyncProcess`] state machines under those semantics. It is
//! used three ways:
//!
//! * to run synchronous protocols directly (e.g. the synchronous SPT of
//!   Section 9.1, which takes time `D̂` and communication `Ê`);
//! * as the *reference semantics* against which the network synchronizer
//!   γ_w is tested for equivalence;
//! * as the host interface for synchronizers: the synchronizer wraps a
//!   [`SyncProcess`] and drives it pulse by pulse with
//!   [`SyncContext::host`]/[`SyncContext::drain`].
//!
//! Definition 4.2's *in-synch* restriction (a protocol may transmit on
//! edge `e` only at pulses divisible by `w(e)`) can be enforced with
//! [`SyncRunner::require_in_synch`].

use crate::cost::{CostClass, CostReport};
use crate::process::TimerId;
use crate::queue::BucketQueue;
use crate::time::SimTime;
use csp_graph::{EdgeId, NodeId, Weight, WeightedGraph};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::error::Error;
use std::fmt;

/// A node-local synchronous protocol instance.
pub trait SyncProcess {
    /// The protocol's message alphabet.
    type Msg: Clone + std::fmt::Debug;

    /// Called at pulse 0 for every vertex, and afterwards whenever the
    /// vertex has incoming messages or a requested wake-up. `inbox` holds
    /// the messages arriving exactly at this pulse.
    fn on_pulse(
        &mut self,
        pulse: u64,
        inbox: &[(NodeId, Self::Msg)],
        ctx: &mut SyncContext<'_, Self::Msg>,
    );

    /// Called when a timer armed with [`SyncContext::set_timer`] fires
    /// (after this pulse's [`on_pulse`](SyncProcess::on_pulse), if both
    /// happen at the same pulse). The default ignores the fire.
    fn on_timer(&mut self, id: TimerId, ctx: &mut SyncContext<'_, Self::Msg>) {
        let _ = (id, ctx);
    }
}

/// Everything a [`SyncProcess`] handler produced during one pulse.
#[derive(Clone, Debug)]
pub struct SyncOutbox<M> {
    /// Messages to send, `(destination, message)`.
    pub sends: Vec<(NodeId, M)>,
    /// Whether the vertex declared local termination.
    pub finished: bool,
    /// Requested wake-up pulse, if any.
    pub wake_at: Option<u64>,
    /// Timer delays armed this pulse, in arming order.
    pub timers: Vec<u64>,
    /// Timers cancelled this pulse.
    pub cancels: Vec<TimerId>,
}

/// Handler-side view for synchronous protocols.
#[derive(Debug)]
pub struct SyncContext<'a, M> {
    node: NodeId,
    pulse: u64,
    graph: &'a WeightedGraph,
    sends: Vec<(NodeId, M)>,
    finished: bool,
    wake_at: Option<u64>,
    timers: Vec<u64>,
    cancels: Vec<TimerId>,
    timer_base: u64,
}

impl<'a, M: Clone + std::fmt::Debug> SyncContext<'a, M> {
    /// Creates a context for an external host (a synchronizer driving the
    /// protocol inside an asynchronous network).
    pub fn host(node: NodeId, pulse: u64, graph: &'a WeightedGraph) -> Self {
        SyncContext {
            node,
            pulse,
            graph,
            sends: Vec::new(),
            finished: false,
            wake_at: None,
            timers: Vec::new(),
            cancels: Vec::new(),
            timer_base: 0,
        }
    }

    /// Anchors this context's [`TimerId`] numbering (runner-internal).
    fn with_timer_base(mut self, base: u64) -> Self {
        self.timer_base = base;
        self
    }

    /// This vertex's identifier.
    #[inline]
    pub fn self_id(&self) -> NodeId {
        self.node
    }

    /// The current pulse number.
    #[inline]
    pub fn pulse(&self) -> u64 {
        self.pulse
    }

    /// The communication graph.
    #[inline]
    pub fn graph(&self) -> &'a WeightedGraph {
        self.graph
    }

    /// Number of vertices in the network.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// `(neighbor, edge, weight)` triples of this vertex.
    pub fn neighbors(&self) -> impl Iterator<Item = (NodeId, EdgeId, Weight)> + 'a {
        self.graph.neighbors(self.node)
    }

    /// Sends `msg` to neighbor `to`; it arrives at pulse
    /// `pulse + w(edge)`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbor.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.graph.edge_between(self.node, to).is_some(),
            "{} cannot send to non-neighbor {to}",
            self.node
        );
        self.sends.push((to, msg));
    }

    /// Declares local termination: the runner stops calling this vertex
    /// (except to deliver stray messages) and the run ends when every
    /// vertex has finished and no messages are in flight.
    pub fn finish(&mut self) {
        self.finished = true;
    }

    /// Requests a wake-up call at `pulse` even without incoming messages.
    ///
    /// # Panics
    ///
    /// Panics if `pulse` is not in the future.
    pub fn wake_at(&mut self, pulse: u64) {
        assert!(pulse > self.pulse, "wake-up must be in the future");
        self.wake_at = Some(match self.wake_at {
            Some(existing) => existing.min(pulse),
            None => pulse,
        });
    }

    /// Arms a one-shot timer firing at pulse `pulse + delay.max(1)`:
    /// [`SyncProcess::on_timer`] runs then with the returned id. Same
    /// facility as the asynchronous
    /// [`Context::set_timer`](crate::Context::set_timer), so wrappers like
    /// [`Reliable`](crate::Reliable) translate directly.
    ///
    /// Timers are a [`SyncRunner`] feature: synchronizer hosts (α_w, β_w,
    /// γ_w in `csp-sync`) reject pulses that arm or cancel timers — use
    /// [`SyncContext::wake_at`] there instead.
    pub fn set_timer(&mut self, delay: u64) -> TimerId {
        let id = TimerId(self.timer_base + self.timers.len() as u64);
        self.timers.push(delay.max(1));
        id
    }

    /// Cancels a timer armed earlier; a cancelled timer never reaches
    /// [`SyncProcess::on_timer`]. Cancelling an already-fired or unknown
    /// timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.cancels.push(id);
    }

    /// Extracts the handler's products (for synchronizer hosts).
    pub fn drain(&mut self) -> SyncOutbox<M> {
        SyncOutbox {
            sends: std::mem::take(&mut self.sends),
            finished: self.finished,
            wake_at: self.wake_at.take(),
            timers: std::mem::take(&mut self.timers),
            cancels: std::mem::take(&mut self.cancels),
        }
    }
}

/// Errors terminating a synchronous run abnormally.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncError {
    /// The pulse budget was exhausted before every vertex finished.
    PulseLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// With [`SyncRunner::require_in_synch`], a vertex transmitted on an
    /// edge at a pulse not divisible by the edge weight (Definition 4.2).
    InSynchViolation {
        /// The sending vertex.
        node: NodeId,
        /// The offending pulse.
        pulse: u64,
        /// The edge weight that does not divide the pulse.
        weight: Weight,
    },
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SyncError::PulseLimitExceeded { limit } => {
                write!(f, "pulse limit of {limit} exceeded")
            }
            SyncError::InSynchViolation { node, pulse, weight } => write!(
                f,
                "{node} sent on an edge of weight {weight} at pulse {pulse}, which {weight} does not divide"
            ),
        }
    }
}

impl Error for SyncError {}

/// The outcome of a completed synchronous run.
#[derive(Debug)]
pub struct SyncRun<P> {
    /// Final per-vertex protocol states.
    pub states: Vec<P>,
    /// Metered costs; `completion` equals the final pulse.
    pub cost: CostReport,
    /// The pulse at which the run ended.
    pub pulses: u64,
}

/// Lock-step synchronous executor (non-consuming builder).
#[derive(Debug)]
pub struct SyncRunner<'g> {
    graph: &'g WeightedGraph,
    pulse_limit: u64,
    require_in_synch: bool,
}

impl<'g> SyncRunner<'g> {
    /// Creates a runner with a one-million-pulse budget.
    pub fn new(graph: &'g WeightedGraph) -> Self {
        SyncRunner {
            graph,
            pulse_limit: 1_000_000,
            require_in_synch: false,
        }
    }

    /// Sets the pulse budget.
    pub fn pulse_limit(&mut self, limit: u64) -> &mut Self {
        self.pulse_limit = limit;
        self
    }

    /// Enforces Definition 4.2: messages on edge `e` may only be sent at
    /// pulses divisible by `w(e)`.
    pub fn require_in_synch(&mut self, yes: bool) -> &mut Self {
        self.require_in_synch = yes;
        self
    }

    /// Runs `make`-constructed processes until every vertex finished and
    /// no messages are in flight.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::PulseLimitExceeded`] on budget exhaustion, or
    /// [`SyncError::InSynchViolation`] when the in-synch check is enabled
    /// and violated.
    pub fn run<P, F>(&self, mut make: F) -> Result<SyncRun<P>, SyncError>
    where
        P: SyncProcess,
        F: FnMut(NodeId, &WeightedGraph) -> P,
    {
        let g = self.graph;
        let n = g.node_count();
        let mut states: Vec<P> = g.nodes().map(|v| make(v, g)).collect();
        let mut finished = vec![false; n];
        let mut cost = CostReport::new(g.edge_count());

        // Flat in-flight store, mirroring the asynchronous runtime's
        // event core: the bucket queue holds `(arrival pulse, seq, slot)`
        // and the payload `(to, from, msg)` lives in a slab with
        // free-list reuse. `seq` is globally unique, so same-pulse
        // deliveries pop in send order — the insertion order the old
        // `BTreeMap<_, Vec<_>>` kept. Arrivals are `pulse + w(e)`, so the
        // window sized by the max weight covers every send made at the
        // current pulse; `advance_to` below keeps the window anchored
        // when wake-ups jump the clock past the last delivery.
        let mut queue = BucketQueue::new(g.max_weight().get());
        let mut slab: Vec<Option<(NodeId, NodeId, P::Msg)>> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut seq: u64 = 0;
        // Requested wake-ups as `(pulse, vertex)`; duplicates are
        // harmless since a wake only marks the vertex active.
        let mut wakes: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        // Armed timers as `(fire pulse, id, vertex)`; ids are globally
        // unique, so same-pulse fires run in arming order. Cancellation
        // is lazy: ids land in `cancelled` and the entry is skipped when
        // it surfaces.
        let mut timer_heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut cancelled: HashSet<u64> = HashSet::new();
        let mut timer_seq: u64 = 0;

        // Persistent per-vertex buffers, reset between pulses via the
        // `touched` list so a pulse costs O(activations), not O(n).
        let mut inbox: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
        let mut fires: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut active = vec![false; n];
        let mut touched: Vec<usize> = Vec::new();

        let mut pulse: u64 = 0;
        let mut last_activity: u64 = 0;
        loop {
            // Gather this pulse's activations.
            for &i in &touched {
                inbox[i].clear();
                fires[i].clear();
                active[i] = false;
            }
            touched.clear();
            let everyone = pulse == 0;
            while queue.next_time() == Some(pulse) {
                let (_, _, slot) = queue.pop().expect("peeked entry");
                let (to, from, msg) = slab[slot].take().expect("slab slot holds payload");
                free.push(slot);
                let i = to.index();
                if !active[i] {
                    active[i] = true;
                    touched.push(i);
                }
                inbox[i].push((from, msg));
            }
            while wakes.peek().is_some_and(|&Reverse((p, _))| p == pulse) {
                let Reverse((_, i)) = wakes.pop().expect("peeked entry");
                if !active[i] {
                    active[i] = true;
                    touched.push(i);
                }
            }
            // Timer fires last, so a vertex activated only by a timer is
            // distinguishable: it gets `on_timer` without `on_pulse`.
            while timer_heap
                .peek()
                .is_some_and(|&Reverse((p, _, _))| p == pulse)
            {
                let Reverse((_, id, i)) = timer_heap.pop().expect("peeked entry");
                if cancelled.remove(&id) {
                    continue;
                }
                if !active[i] && fires[i].is_empty() {
                    touched.push(i);
                }
                fires[i].push(id);
            }

            for v in g.nodes() {
                let i = v.index();
                // `on_pulse` runs for message/wake activations (and for
                // everyone at pulse 0); timer fires follow on the same
                // context, so their sends share one metering pass below.
                let pulse_call =
                    (everyone || active[i]) && !(finished[i] && inbox[i].is_empty() && !everyone);
                if !pulse_call && fires[i].is_empty() {
                    continue;
                }
                let mut ctx = SyncContext::host(v, pulse, g).with_timer_base(timer_seq);
                if pulse_call {
                    states[i].on_pulse(pulse, &inbox[i], &mut ctx);
                }
                for &id in &fires[i] {
                    states[i].on_timer(TimerId(id), &mut ctx);
                }
                let out = ctx.drain();
                for (k, &delay) in out.timers.iter().enumerate() {
                    timer_heap.push(Reverse((pulse + delay, timer_seq + k as u64, i)));
                }
                timer_seq += out.timers.len() as u64;
                for t in out.cancels {
                    cancelled.insert(t.0);
                }
                if out.finished {
                    finished[i] = true;
                }
                if let Some(w) = out.wake_at {
                    wakes.push(Reverse((w, i)));
                }
                for (to, msg) in out.sends {
                    let eid = g.edge_between(v, to).expect("send validated");
                    let w = g.weight(eid);
                    if self.require_in_synch && !pulse.is_multiple_of(w.get()) {
                        return Err(SyncError::InSynchViolation {
                            node: v,
                            pulse,
                            weight: w,
                        });
                    }
                    cost.record_send(eid, w, CostClass::Protocol);
                    let arrival = pulse + w.get();
                    let slot = match free.pop() {
                        Some(s) => {
                            slab[s] = Some((to, v, msg));
                            s
                        }
                        None => {
                            slab.push(Some((to, v, msg)));
                            slab.len() - 1
                        }
                    };
                    queue.push(arrival, seq, slot);
                    seq += 1;
                    last_activity = arrival;
                }
            }

            // Drop cancelled timers sitting at the top of the heap, so
            // neither termination nor pulse selection sees dead entries.
            while timer_heap
                .peek()
                .is_some_and(|&Reverse((_, id, _))| cancelled.contains(&id))
            {
                let Reverse((_, id, _)) = timer_heap.pop().expect("peeked entry");
                cancelled.remove(&id);
            }
            // Termination: all finished, nothing in flight, no wake-ups,
            // no pending timers (a live timer may still send).
            let all_done = finished.iter().all(|&f| f);
            if all_done && queue.is_empty() && timer_heap.is_empty() {
                cost.completion = SimTime::new(last_activity.max(pulse));
                cost.bucket_window = BucketQueue::capacity_for(g.max_weight().get()) as u64;
                cost.overflow_pushes = queue.overflow_pushes();
                return Ok(SyncRun {
                    states,
                    cost,
                    pulses: pulse,
                });
            }
            // Advance to the next interesting pulse.
            let next_delivery = queue.next_time();
            let next_wake = wakes.peek().map(|&Reverse((p, _))| p);
            let next_timer = timer_heap.peek().map(|&Reverse((p, _, _))| p);
            let soonest = |a: Option<u64>, b: Option<u64>| match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            };
            let next = match soonest(soonest(next_delivery, next_wake), next_timer) {
                Some(p) => p,
                None => {
                    // Not all finished but nothing scheduled: deadlock.
                    // Treat as completion — mirrors asynchronous
                    // quiescence; callers inspect `finished` via state.
                    cost.completion = SimTime::new(pulse);
                    cost.bucket_window = BucketQueue::capacity_for(g.max_weight().get()) as u64;
                    cost.overflow_pushes = queue.overflow_pushes();
                    return Ok(SyncRun {
                        states,
                        cost,
                        pulses: pulse,
                    });
                }
            };
            if next > self.pulse_limit {
                return Err(SyncError::PulseLimitExceeded {
                    limit: self.pulse_limit,
                });
            }
            pulse = next;
            // Wake-only jumps can move the clock past the last delivery;
            // re-anchor the bucket window so subsequent sends stay O(1).
            queue.advance_to(pulse);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::{generators, Cost};

    /// Synchronous broadcast: node 0 floods; each node records the pulse
    /// at which it first heard — exactly its weighted distance from 0
    /// under exact delays along shortest paths.
    struct SyncFlood {
        heard_at: Option<u64>,
    }

    impl SyncProcess for SyncFlood {
        type Msg = ();

        fn on_pulse(&mut self, pulse: u64, inbox: &[(NodeId, ())], ctx: &mut SyncContext<'_, ()>) {
            let me_is_source = ctx.self_id() == NodeId::new(0);
            if pulse == 0 && me_is_source {
                self.heard_at = Some(0);
                let targets: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
                for u in targets {
                    ctx.send(u, ());
                }
                ctx.finish();
            } else if !inbox.is_empty() && self.heard_at.is_none() {
                self.heard_at = Some(pulse);
                let targets: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
                for u in targets {
                    ctx.send(u, ());
                }
                ctx.finish();
            } else if pulse == 0 {
                // passive until a message arrives
                ctx.finish();
            }
        }
    }

    #[test]
    fn exact_delays_realize_shortest_paths() {
        // diamond: 0-1 (1), 1-3 (1), 0-2 (3), 2-3 (1)
        let mut b = csp_graph::GraphBuilder::new(4);
        b.edge(0, 1, 1).edge(1, 3, 1).edge(0, 2, 3).edge(2, 3, 1);
        let g = b.build().unwrap();
        let run = SyncRunner::new(&g)
            .run(|_, _| SyncFlood { heard_at: None })
            .unwrap();
        let dist = csp_graph::algo::distances(&g, NodeId::new(0));
        for v in g.nodes() {
            assert_eq!(
                run.states[v.index()].heard_at,
                Some(dist[v.index()].get() as u64),
                "first-hearing pulse must equal weighted distance at {v}"
            );
        }
    }

    #[test]
    fn sync_flood_cost_is_bounded_by_total_weight_times_two() {
        let g = generators::connected_gnp(20, 0.2, generators::WeightDist::Uniform(1, 8), 4);
        let run = SyncRunner::new(&g)
            .run(|_, _| SyncFlood { heard_at: None })
            .unwrap();
        // every vertex sends to all neighbors at most once: ≤ 2·Ê.
        assert!(run.cost.weighted_comm <= g.total_weight() * 2);
    }

    /// Counts its own wake-ups at pulses 3, 6.
    struct Waker {
        wakes: Vec<u64>,
    }

    impl SyncProcess for Waker {
        type Msg = ();
        fn on_pulse(&mut self, pulse: u64, _inbox: &[(NodeId, ())], ctx: &mut SyncContext<'_, ()>) {
            if pulse == 0 {
                ctx.wake_at(3);
            } else {
                self.wakes.push(pulse);
                if pulse == 3 {
                    ctx.wake_at(6);
                } else {
                    ctx.finish();
                }
            }
        }
    }

    #[test]
    fn wake_ups_fire_at_requested_pulses() {
        let g = generators::path(2, |_| 1);
        let run = SyncRunner::new(&g)
            .run(|_, _| Waker { wakes: vec![] })
            .unwrap();
        assert_eq!(run.states[0].wakes, vec![3, 6]);
        assert_eq!(run.pulses, 6);
    }

    /// Sends at pulse 1 on a weight-2 edge — an in-synch violation.
    #[derive(Debug)]
    struct OutOfSynch;

    impl SyncProcess for OutOfSynch {
        type Msg = ();
        fn on_pulse(&mut self, pulse: u64, _inbox: &[(NodeId, ())], ctx: &mut SyncContext<'_, ()>) {
            if ctx.self_id() == NodeId::new(0) {
                if pulse == 0 {
                    ctx.wake_at(1);
                } else {
                    ctx.send(NodeId::new(1), ());
                    ctx.finish();
                }
            } else {
                ctx.finish();
            }
        }
    }

    #[test]
    fn in_synch_check_fires() {
        let g = generators::path(2, |_| 2);
        let err = SyncRunner::new(&g)
            .require_in_synch(true)
            .run(|_, _| OutOfSynch)
            .unwrap_err();
        assert!(matches!(err, SyncError::InSynchViolation { pulse: 1, .. }));
    }

    #[test]
    fn in_synch_check_allows_divisible_pulses() {
        let g = generators::path(2, |_| 2);
        // OutOfSynch sends at pulse 1 only; a variant sending at 0 passes.
        struct InSynch;
        impl SyncProcess for InSynch {
            type Msg = ();
            fn on_pulse(&mut self, pulse: u64, _i: &[(NodeId, ())], ctx: &mut SyncContext<'_, ()>) {
                if ctx.self_id() == NodeId::new(0) && pulse == 0 {
                    ctx.send(NodeId::new(1), ());
                }
                ctx.finish();
            }
        }
        let run = SyncRunner::new(&g)
            .require_in_synch(true)
            .run(|_, _| InSynch);
        assert!(run.is_ok());
    }

    #[test]
    fn pulse_limit_errors() {
        #[derive(Debug)]
        struct Insomniac;
        impl SyncProcess for Insomniac {
            type Msg = ();
            fn on_pulse(&mut self, pulse: u64, _i: &[(NodeId, ())], ctx: &mut SyncContext<'_, ()>) {
                ctx.wake_at(pulse + 10);
            }
        }
        let g = generators::path(2, |_| 1);
        let err = SyncRunner::new(&g)
            .pulse_limit(100)
            .run(|_, _| Insomniac)
            .unwrap_err();
        assert_eq!(err, SyncError::PulseLimitExceeded { limit: 100 });
    }

    /// Arms a timer at pulse 0, a decoy it cancels, and finishes when the
    /// survivor fires.
    struct TimedOut {
        fired: Vec<(u64, u64)>,
    }

    impl SyncProcess for TimedOut {
        type Msg = ();
        fn on_pulse(&mut self, pulse: u64, _i: &[(NodeId, ())], ctx: &mut SyncContext<'_, ()>) {
            if pulse == 0 {
                let keep = ctx.set_timer(5);
                let decoy = ctx.set_timer(2);
                ctx.cancel_timer(decoy);
                assert_ne!(keep, decoy);
            }
        }
        fn on_timer(&mut self, id: TimerId, ctx: &mut SyncContext<'_, ()>) {
            self.fired.push((ctx.pulse(), id.0));
            ctx.finish();
        }
    }

    #[test]
    fn timers_fire_at_pulse_plus_delay_and_cancels_hold() {
        let g = generators::path(2, |_| 1);
        let run = SyncRunner::new(&g)
            .run(|_, _| TimedOut { fired: vec![] })
            .unwrap();
        // Only the kept timer fires, at pulse 5; the cancelled one never
        // wakes anybody, and pending timers keep the run alive until
        // then. Ids are globally unique across the two vertices.
        assert_eq!(run.pulses, 5);
        let mut all: Vec<(u64, u64)> = run.states.iter().flat_map(|s| s.fired.clone()).collect();
        all.sort_unstable();
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|&(p, _)| p == 5));
        assert_ne!(all[0].1, all[1].1);
    }

    /// Retransmits over a weight-3 edge until acked, using a timer.
    struct NaggingSender {
        acked: bool,
        sent: u32,
    }

    impl SyncProcess for NaggingSender {
        type Msg = bool; // true = ack
        fn on_pulse(
            &mut self,
            pulse: u64,
            inbox: &[(NodeId, bool)],
            ctx: &mut SyncContext<'_, bool>,
        ) {
            if ctx.self_id() == NodeId::new(0) {
                if pulse == 0 {
                    self.sent += 1;
                    ctx.send(NodeId::new(1), false);
                    ctx.set_timer(10);
                }
                if inbox.iter().any(|&(_, ack)| ack) {
                    self.acked = true;
                    ctx.finish();
                }
            } else if !inbox.is_empty() {
                // Receiver acks the second copy only, forcing one timeout.
                self.sent += 1;
                if self.sent == 2 {
                    ctx.send(NodeId::new(0), true);
                }
                ctx.finish();
            }
        }
        fn on_timer(&mut self, _id: TimerId, ctx: &mut SyncContext<'_, bool>) {
            if !self.acked {
                self.sent += 1;
                ctx.send(NodeId::new(1), false);
                ctx.set_timer(10);
            }
        }
    }

    #[test]
    fn timer_driven_retransmission_converges() {
        let g = generators::path(2, |_| 3);
        let run = SyncRunner::new(&g)
            .run(|_, _| NaggingSender {
                acked: false,
                sent: 0,
            })
            .unwrap();
        assert!(run.states[0].acked);
        assert_eq!(run.states[0].sent, 2, "exactly one retransmission");
    }

    #[test]
    fn communication_is_metered_with_weights() {
        let g = generators::path(2, |_| 7);
        let run = SyncRunner::new(&g)
            .run(|_, _| SyncFlood { heard_at: None })
            .unwrap();
        // 0 sends one message (7), 1 replies-floods one (7).
        assert_eq!(run.cost.weighted_comm, Cost::new(14));
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use csp_graph::generators;

    /// Two sources flood simultaneously; inbox batching must deliver both
    /// messages arriving at the same pulse together.
    #[derive(Clone, Debug)]
    struct DualFlood {
        batches: Vec<usize>,
    }

    impl SyncProcess for DualFlood {
        type Msg = u8;
        fn on_pulse(&mut self, pulse: u64, inbox: &[(NodeId, u8)], ctx: &mut SyncContext<'_, u8>) {
            if pulse == 0 {
                let me = ctx.self_id().index();
                if me == 0 || me == 2 {
                    let targets: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
                    for u in targets {
                        ctx.send(u, me as u8);
                    }
                }
                ctx.finish();
            } else if !inbox.is_empty() {
                self.batches.push(inbox.len());
            }
        }
    }

    #[test]
    fn simultaneous_arrivals_share_one_inbox() {
        // vertex 1 sits between sources 0 and 2 at equal weight: both
        // messages land at the same pulse, in one on_pulse call.
        let g = generators::path(3, |_| 4);
        let run = SyncRunner::new(&g)
            .run(|_, _| DualFlood { batches: vec![] })
            .unwrap();
        assert_eq!(run.states[1].batches, vec![2]);
    }

    /// A finished vertex still receives stray deliveries.
    #[derive(Clone, Debug)]
    struct FinishEarly {
        late: usize,
    }

    impl SyncProcess for FinishEarly {
        type Msg = ();
        fn on_pulse(&mut self, pulse: u64, inbox: &[(NodeId, ())], ctx: &mut SyncContext<'_, ()>) {
            if pulse == 0 {
                if ctx.self_id() == NodeId::new(0) {
                    ctx.send(NodeId::new(1), ());
                }
                ctx.finish(); // everyone opts out immediately
            } else {
                self.late += inbox.len();
            }
        }
    }

    #[test]
    fn stray_messages_reach_finished_vertices() {
        let g = generators::path(2, |_| 3);
        let run = SyncRunner::new(&g)
            .run(|_, _| FinishEarly { late: 0 })
            .unwrap();
        assert_eq!(run.states[1].late, 1);
        assert_eq!(run.pulses, 3); // the delivery pulse
    }

    #[test]
    fn zero_pulse_protocol_ends_at_zero() {
        #[derive(Debug)]
        struct Nothing;
        impl SyncProcess for Nothing {
            type Msg = ();
            fn on_pulse(&mut self, _p: u64, _i: &[(NodeId, ())], ctx: &mut SyncContext<'_, ()>) {
                ctx.finish();
            }
        }
        let g = generators::cycle(4, |_| 7);
        let run = SyncRunner::new(&g).run(|_, _| Nothing).unwrap();
        assert_eq!(run.pulses, 0);
        assert_eq!(run.cost.messages, 0);
    }
}
