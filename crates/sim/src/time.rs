//! Simulated physical time.

use std::fmt;
use std::ops::{Add, AddAssign};

/// A point in simulated time.
///
/// One unit of [`SimTime`] is the time a unit-weight edge takes to deliver
/// a message under the worst-case delay model; an edge of weight `w`
/// takes up to `w` units.
///
/// # Example
///
/// ```
/// use csp_sim::SimTime;
/// let t = SimTime::ZERO + 5;
/// assert_eq!(t.get(), 5);
/// assert!(t < SimTime::new(6));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point.
    #[inline]
    pub const fn new(t: u64) -> Self {
        SimTime(t)
    }

    /// Raw tick count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Saturating difference `self − earlier`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0.checked_add(rhs).expect("simulated time overflow"))
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ordering() {
        let t = SimTime::new(10);
        assert_eq!((t + 5).get(), 15);
        assert!(SimTime::ZERO < t);
        assert_eq!(t.since(SimTime::new(4)), 6);
        assert_eq!(SimTime::new(4).since(t), 0); // saturating
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let _ = SimTime::new(u64::MAX) + 1;
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::new(7).to_string(), "t=7");
    }
}
