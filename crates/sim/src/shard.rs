//! Sharded conservative-parallel execution of a *single* run.
//!
//! [`crate::sweep`] parallelises across runs; this module parallelises
//! *within* one. The graph is partitioned into `k` disjoint shards
//! (derived from the paper's sparse-cover coarsening via
//! [`ShardPlan::derive`]), each with its own scheduling queue, payload
//! slab, FIFO floors and per-vertex state — and `k` scoped worker
//! threads execute the event calendar **tick-synchronously**:
//!
//! 1. **Pick `T`** — every worker posts its queue's earliest scheduled
//!    time; the global minimum `T` is the next tick. All events at `T`
//!    are already enqueued (delays are clamped into `[1, w(e)]` and
//!    timer delays into `[1, ∞)`, so nothing executed at `T` can
//!    schedule anything *at* `T`), which makes the one-tick window safe
//!    for **every** oracle — not just the worst-case model whose
//!    cut-weight lookahead the conservative-PDES literature assumes.
//! 2. **Handlers in parallel** (phase B) — each shard pops its events
//!    with time `T` in `seq` order and runs the protocol handlers,
//!    recording what each handler sent and armed. Handlers only touch
//!    their own vertex, and token/timer-id assignment is per-vertex
//!    (see [`crate::MsgToken`]), so no cross-shard state is needed.
//! 3. **Serial dispatch** (leader section) — worker 0 merges the
//!    per-shard handler records by global event `seq` and replays the
//!    *dispatch* side effects in exactly the sequential order: event
//!    budget, cost meters, trace, and — crucially — the
//!    [`LinkOracle`] queries, which stateful and index-addressed
//!    oracles require to arrive in global dispatch order. Each
//!    surviving push is assigned the next global `seq`.
//! 4. **Routing in parallel** (phase C + A) — each shard walks its own
//!    records again, applies its FIFO floors (a channel's floor lives
//!    with the *sender's* shard), and routes every push into a
//!    per-`(receiver, sender)` outbox; after a barrier, every shard
//!    merges its `k` inbox streams by `seq` into its queue.
//!
//! Because ties break on the same global `(time, seq)` key and the
//! oracle sees the same query sequence, a sharded run is **bit
//! identical** to [`Simulator`] — costs, trace, final states and fault
//! meters — under all oracles, including schedule replay, drops,
//! crashes, rejoins, weight drift and timers.
//! `tests/shard_differential.rs` pins this across shard counts
//! {1, 2, 4, 8} and both queue kinds.
//!
//! The one exception is [`Simulator::comm_limit`]: truncation stops the
//! sequential loop *mid-tick*, which a whole-tick parallel phase cannot
//! replicate, so a sharded run with a communication budget delegates to
//! the sequential core (documented on [`ShardedSimulator::comm_limit`]).

use crate::cost::CostClass;
use crate::cost::CostReport;
use crate::delay::{DelayModel, LinkDecision, LinkOracle, ModelOracle, MsgInfo};
use crate::process::{Context, Process, TimerId};
use crate::queue::BucketQueue;
use crate::runtime::{CoreKind, Delivery, Event, Queue, Run, SimError, Simulator};
use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent};
use csp_graph::{EdgeId, NodeId, Weight, WeightedGraph};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

pub use csp_graph::{CutStats, ShardPlan};

/// A spin barrier tuned for the tick loop: four synchronisation points
/// per simulated tick make `std::sync::Barrier`'s mutex+condvar
/// round-trip the dominant cost on small graphs, while a generation
/// counter with busy-wait keeps the gap in the tens of nanoseconds.
/// After a bounded spin the waiter yields to the scheduler, so running
/// more shards than cores (legal — the shard count is a determinism
/// parameter, not a parallelism hint) degrades to cooperative
/// round-robin instead of burning whole time slices.
///
/// `wait` returns `false` once the barrier is poisoned (a worker
/// panicked) so the surviving workers can unwind instead of spinning
/// forever.
struct SpinBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
    total: usize,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        SpinBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            total,
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    #[must_use]
    fn wait(&self) -> bool {
        if self.poisoned.load(Ordering::Acquire) {
            return false;
        }
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.arrived.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                if self.poisoned.load(Ordering::Acquire) {
                    return false;
                }
                if spins < 64 {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            !self.poisoned.load(Ordering::Acquire)
        }
    }
}

/// Sets the poison flag if the scope unwinds — stops every other worker
/// from spinning on a barrier whose missing participant is dead.
struct PoisonOnPanic<'a>(&'a SpinBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// What the leader decided for one queued send, aligned index-for-index
/// with the shard's `sends` buffer.
#[derive(Clone, Copy)]
enum Fate {
    /// Dropped by the oracle: metered, index consumed, never enqueued.
    Drop,
    /// Deliver after `delay` (already clamped); the push carries the
    /// global sequence number `seq`.
    Deliver { delay: u64, seq: u64 },
}

/// What one handler did, in pop order. Ranges index into the shard's
/// flat `sends` / `arms` arenas.
struct HandlerRec {
    /// The popped event's global sequence number — the merge key of the
    /// leader's serial walk.
    seq: u64,
    node: NodeId,
    /// `Some` for a message delivery (trace + completion bookkeeping),
    /// `None` for a timer fire.
    msg: Option<MsgMeta>,
    sends: (u32, u32),
    arms: (u32, u32),
}

/// Delivery metadata the leader needs after the payload was consumed.
struct MsgMeta {
    from: NodeId,
    edge: csp_graph::EdgeId,
    sent: SimTime,
    class: CostClass,
}

type InboxItem<M> = (u64, u64, Event<M>);

/// Inbox buffers are deques so phase A can pop owned items from the
/// front while the allocation keeps rotating between the sender's
/// out-buffer, the shared cell and the receiver's merge stream.
type InboxBuf<M> = VecDeque<InboxItem<M>>;

/// One shard: the vertices assigned to it, their protocol states, a
/// private scheduling queue + slab, the FIFO floors of the channels it
/// *sends* on, and the per-tick scratch buffers.
struct Shard<P: Process> {
    /// Global ids of this shard's vertices, ascending.
    nodes: Vec<NodeId>,
    /// Protocol states, indexed shard-locally (same order as `nodes`).
    states: Vec<P>,
    queue: Queue,
    slab: Vec<Option<Event<P::Msg>>>,
    free: Vec<usize>,
    /// FIFO floors of the directed channels whose sender is local,
    /// indexed by the shared `channel_local` map.
    floors: Vec<SimTime>,
    /// Per-vertex metered-send counts (handler `msg_base`s), local idx.
    node_msg_seq: Vec<u64>,
    /// Per-vertex next timer id, local idx.
    node_timer_seq: Vec<u64>,
    /// Per-vertex timer-id floor (local idx): ids below it belong to a
    /// pre-rejoin incarnation and are consumed as dead events.
    timer_floor: Vec<u64>,
    /// Stashed fresh states for scheduled rejoins (local idx), earliest
    /// rejoin last — mirrors the sequential machine's stash.
    rejoin_states: Vec<Vec<P>>,
    /// This shard's copy of the effective weight table, advanced to the
    /// current tick at the top of phase B so handlers observe drift
    /// through [`Context::weight_of`](crate::Context::weight_of)
    /// exactly as they would sequentially.
    eff: Vec<Weight>,
    /// First drift revision not yet applied to `eff`.
    drift_cursor: usize,
    cancelled: HashSet<(NodeId, u64)>,
    dead_events: u64,
    // Recycled handler buffers (same role as the sequential Machine's).
    outbox: Vec<(NodeId, P::Msg, CostClass)>,
    out_edges: Vec<csp_graph::EdgeId>,
    timers: Vec<u64>,
    cancels: Vec<u64>,
    // Per-tick arenas: what this shard's handlers produced...
    recs: Vec<HandlerRec>,
    sends: Vec<(NodeId, P::Msg, CostClass, csp_graph::EdgeId)>,
    arms: Vec<(u64, u64)>,
    // ...and what the leader decided about it.
    decided: Vec<Fate>,
    arm_seqs: Vec<u64>,
    /// Phase-C routing buffers, one per receiver shard; swapped into the
    /// inbox cells at the end of the phase.
    outbufs: Vec<InboxBuf<P::Msg>>,
    /// Phase-A merge buffers, one per sender shard; swapped out of the
    /// inbox cells.
    streams: Vec<InboxBuf<P::Msg>>,
}

impl<P: Process> Shard<P> {
    fn new(kind: CoreKind, max_delay: u64, shards: usize) -> Self {
        Shard {
            nodes: Vec::new(),
            states: Vec::new(),
            queue: Queue::new(kind, max_delay),
            slab: Vec::new(),
            free: Vec::new(),
            floors: Vec::new(),
            node_msg_seq: Vec::new(),
            node_timer_seq: Vec::new(),
            timer_floor: Vec::new(),
            rejoin_states: Vec::new(),
            eff: Vec::new(),
            drift_cursor: 0,
            cancelled: HashSet::new(),
            dead_events: 0,
            outbox: Vec::new(),
            out_edges: Vec::new(),
            timers: Vec::new(),
            cancels: Vec::new(),
            recs: Vec::new(),
            sends: Vec::new(),
            arms: Vec::new(),
            decided: Vec::new(),
            arm_seqs: Vec::new(),
            outbufs: (0..shards).map(|_| VecDeque::new()).collect(),
            streams: (0..shards).map(|_| VecDeque::new()).collect(),
        }
    }

    fn push(&mut self, time: u64, seq: u64, event: Event<P::Msg>) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s] = Some(event);
                s
            }
            None => {
                self.slab.push(Some(event));
                self.slab.len() - 1
            }
        };
        self.queue.push(time, seq, slot);
    }
}

/// Everything the leader's serial section owns: the oracle and the
/// global meters whose updates must happen in sequential dispatch
/// order.
struct Global<'o, O: ?Sized> {
    oracle: &'o mut O,
    cost: CostReport,
    trace: Trace,
    /// Next global push sequence number — mirrors the sequential core's
    /// `seq`, incremented per enqueued delivery/timer/rejoin.
    seq: u64,
    events: u64,
    err: Option<SimError>,
    /// The leader's copy of the effective weight table — metering and
    /// delay clamping in the serial section use it, advanced to the
    /// tick at the top of [`serial_dispatch`].
    eff: Vec<Weight>,
    /// First drift revision not yet applied to `eff`.
    drift_cursor: usize,
}

/// Applies every revision of `drift` (sorted by time) at or before
/// `now` to an effective-weight table. Each copy of the table — the
/// leader's and each shard's — is advanced independently but through
/// this same monotone walk, so all of them agree at any given tick.
fn advance_drift(
    eff: &mut [Weight],
    cursor: &mut usize,
    drift: &[(EdgeId, SimTime, Weight)],
    now: SimTime,
) {
    while let Some(&(e, t, w)) = drift.get(*cursor) {
        if t > now {
            break;
        }
        eff[e.index()] = w;
        *cursor += 1;
    }
}

/// Whether `v` is dead at `now` under its churn plan: an odd number of
/// toggles has taken effect (toggle instants inclusive) — the same
/// parity rule as the sequential machine's `crashed`.
#[inline]
fn churned_dead(churn: &[Vec<SimTime>], v: NodeId, now: SimTime) -> bool {
    churn[v.index()].iter().take_while(|&&t| now >= t).count() % 2 == 1
}

/// Drop-in parallel variant of [`Simulator`] executing one run across
/// `k` shard worker threads.
///
/// The builder mirrors [`Simulator`]; [`ShardedSimulator::threads`]
/// picks the shard count. Runs are bit-identical to the sequential
/// core under every oracle — see the [module docs](self) for the
/// synchronisation scheme and its soundness argument.
///
/// ```
/// use csp_sim::{ShardedSimulator, Simulator, Process, Context};
/// use csp_graph::{generators, NodeId};
///
/// #[derive(Clone)]
/// struct Flood(bool);
/// impl Process for Flood {
///     type Msg = ();
///     fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
///         if self.0 { ctx.send_all(()); }
///     }
///     fn on_message(&mut self, _: NodeId, _: (), ctx: &mut Context<'_, ()>) {
///         if !self.0 { self.0 = true; ctx.send_all(()); }
///     }
/// }
///
/// let g = generators::connected_gnp(64, 0.1, generators::WeightDist::Uniform(1, 8), 7);
/// let make = |v: NodeId, _: &_| Flood(v.index() == 0);
/// let seq = Simulator::new(&g).run(make).unwrap();
/// let par = ShardedSimulator::new(&g).threads(4).run(make).unwrap();
/// assert_eq!(seq.cost, par.cost);
/// ```
#[derive(Debug)]
pub struct ShardedSimulator<'g> {
    graph: &'g WeightedGraph,
    delay: DelayModel,
    seed: u64,
    event_limit: u64,
    comm_limit: Option<u128>,
    trace_cap: usize,
    core: CoreKind,
    threads: usize,
    plan: Option<ShardPlan>,
}

impl<'g> ShardedSimulator<'g> {
    /// Creates a sharded simulator with the same defaults as
    /// [`Simulator::new`] and an automatic thread count
    /// ([`crate::sweep::effective_threads`] of 0).
    pub fn new(graph: &'g WeightedGraph) -> Self {
        ShardedSimulator {
            graph,
            delay: DelayModel::WorstCase,
            seed: 0,
            event_limit: 100_000_000,
            comm_limit: None,
            trace_cap: 0,
            core: CoreKind::Bucket,
            threads: 0,
            plan: None,
        }
    }

    /// Sets the delay model (see [`Simulator::delay`]).
    pub fn delay(&mut self, delay: DelayModel) -> &mut Self {
        self.delay = delay;
        self
    }

    /// Sets the seed for randomized delay models.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the event budget (see [`Simulator::event_limit`]).
    pub fn event_limit(&mut self, limit: u64) -> &mut Self {
        self.event_limit = limit;
        self
    }

    /// Records up to `cap` delivered messages into [`Run::trace`].
    pub fn record_trace(&mut self, cap: usize) -> &mut Self {
        self.trace_cap = cap;
        self
    }

    /// Selects the per-shard scheduling-queue implementation.
    pub fn core(&mut self, kind: CoreKind) -> &mut Self {
        self.core = kind;
        self
    }

    /// Caps the weighted communication, exactly as
    /// [`Simulator::comm_limit`].
    ///
    /// Truncation stops the sequential loop *mid-tick* (the send that
    /// crosses the budget silences the rest of the calendar), which a
    /// whole-tick parallel phase cannot replicate bit-for-bit — so a
    /// budgeted run **delegates to the sequential core**. The result is
    /// identical; only the parallelism is lost.
    pub fn comm_limit(&mut self, limit: u128) -> &mut Self {
        self.comm_limit = Some(limit);
        self
    }

    /// Sets the shard/worker count. `0` (the default) uses
    /// [`crate::sweep::effective_threads`]'s auto detection; any other
    /// value is honoured exactly. The shard count is a *partition*
    /// parameter — it selects which deterministic execution is run, so
    /// it is deliberately not capped at the available parallelism
    /// (running more workers than cores is still bit-identical, just
    /// slower).
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.threads = threads;
        self
    }

    /// Overrides the vertex partition (default:
    /// [`ShardPlan::derive`] on the run's graph and thread count).
    ///
    /// # Panics
    ///
    /// Panics at run time if the plan's vertex count or shard count
    /// does not match the graph/threads.
    pub fn plan(&mut self, plan: ShardPlan) -> &mut Self {
        self.plan = Some(plan);
        self
    }

    /// Runs `make(v, graph)`-constructed processes to quiescence under
    /// the configured [`DelayModel`], sharded across worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the protocol does
    /// not quiesce within the event budget.
    pub fn run<P, F>(&self, make: F) -> Result<Run<P>, SimError>
    where
        P: Process + Send,
        P::Msg: Send,
        F: FnMut(NodeId, &WeightedGraph) -> P,
    {
        self.run_with_oracle(&mut ModelOracle::new(self.delay, self.seed), make)
    }

    /// Runs with every message's fate decided by `oracle`, sharded
    /// across worker threads. Oracle queries are serialized in global
    /// dispatch order, so stateful and index-addressed oracles (replay,
    /// random drops, crash schedules) behave exactly as under
    /// [`Simulator::run_with_oracle`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the protocol does
    /// not quiesce within the event budget.
    pub fn run_with_oracle<P, F, O>(&self, oracle: &mut O, make: F) -> Result<Run<P>, SimError>
    where
        P: Process + Send,
        P::Msg: Send,
        F: FnMut(NodeId, &WeightedGraph) -> P,
        O: LinkOracle + Send + ?Sized,
    {
        // Mid-tick truncation semantics require the sequential loop.
        if let Some(limit) = self.comm_limit {
            let mut seq = Simulator::new(self.graph);
            seq.event_limit(self.event_limit)
                .record_trace(self.trace_cap)
                .core(self.core)
                .comm_limit(limit);
            return seq.run_with_oracle(oracle, make);
        }
        let k = if self.threads == 0 {
            crate::sweep::effective_threads(0)
        } else {
            self.threads
        };
        let plan = match &self.plan {
            Some(p) => {
                assert_eq!(
                    p.assignment().len(),
                    self.graph.node_count(),
                    "shard plan does not cover this graph"
                );
                assert_eq!(p.shards(), k, "shard plan does not match thread count");
                p.clone()
            }
            None => ShardPlan::derive(self.graph, k),
        };
        self.run_planned(oracle, make, &plan)
    }

    fn run_planned<P, F, O>(
        &self,
        oracle: &mut O,
        mut make: F,
        plan: &ShardPlan,
    ) -> Result<Run<P>, SimError>
    where
        P: Process + Send,
        P::Msg: Send,
        F: FnMut(NodeId, &WeightedGraph) -> P,
        O: LinkOracle + Send + ?Sized,
    {
        let g = self.graph;
        let k = plan.shards();
        let n = g.node_count();
        let max_delay = g.max_weight().get();

        // ---- Layout: local indices and channel-floor ownership. ----
        let mut shards: Vec<Shard<P>> = (0..k)
            .map(|_| Shard::new(self.core, max_delay, k))
            .collect();
        let mut local_of: Vec<u32> = vec![0; n];
        for v in g.nodes() {
            let s = plan.shard_of(v);
            local_of[v.index()] = shards[s].nodes.len() as u32;
            shards[s].nodes.push(v);
        }
        for shard in &mut shards {
            shard.node_msg_seq = vec![0; shard.nodes.len()];
            shard.node_timer_seq = vec![0; shard.nodes.len()];
        }
        // The floor of channel `2e + dir` lives with the shard of the
        // vertex that sends on it.
        let mut channel_local: Vec<u32> = vec![0; 2 * g.edge_count()];
        for eid in g.edge_ids() {
            let e = g.edge(eid);
            for (dir, from) in [(0usize, e.u()), (1usize, e.v())] {
                let owner = &mut shards[plan.shard_of(from)];
                channel_local[2 * eid.index() + dir] = owner.floors.len() as u32;
                owner.floors.push(SimTime::ZERO);
            }
        }

        // ---- Time zero, serial: states, churn/drift plans, on_start. ----
        for v in g.nodes() {
            let p = make(v, g);
            shards[plan.shard_of(v)].states.push(p);
        }
        // Plans are queried in the sequential core's exact order —
        // churn per vertex, then drift once — so a recording oracle
        // sees an identical stream.
        let churn: Vec<Vec<SimTime>> = g
            .nodes()
            .map(|v| {
                let plan = oracle.churn_plan(v);
                assert!(
                    plan.windows(2).all(|w| w[0] < w[1]),
                    "churn plan for {v} must be strictly increasing"
                );
                plan
            })
            .collect();
        let mut drift = oracle.drift_plan();
        drift.sort_by_key(|&(_, t, _)| t);
        let mut eff0: Vec<Weight> = g.edge_ids().map(|e| g.weight(e)).collect();
        let mut applied0 = 0usize;
        advance_drift(&mut eff0, &mut applied0, &drift, SimTime::ZERO);
        let mut global = Global {
            oracle,
            cost: CostReport::new(g.edge_count()),
            trace: Trace::new(self.trace_cap),
            seq: 0,
            events: 0,
            err: None,
            eff: eff0.clone(),
            drift_cursor: applied0,
        };
        global.cost.crashed_nodes = churn.iter().filter(|p| !p.is_empty()).count() as u64;
        global.cost.recoveries = churn.iter().map(|p| (p.len() / 2) as u64).sum();
        global.cost.weight_revisions = drift.len() as u64;
        for shard in &mut shards {
            shard.eff = eff0.clone();
            shard.drift_cursor = applied0;
            shard.timer_floor = vec![0; shard.nodes.len()];
            shard.rejoin_states.resize_with(shard.nodes.len(), Vec::new);
        }
        // Fresh rejoin states, fabricated in the sequential order:
        // vertex order then rejoin order, stored reversed per vertex.
        for v in g.nodes() {
            let rejoins = churn[v.index()].len() / 2;
            let stash: Vec<P> = (0..rejoins).map(|_| make(v, g)).collect();
            let (s, li) = (plan.shard_of(v), local_of[v.index()] as usize);
            shards[s].rejoin_states[li].extend(stash.into_iter().rev());
        }
        // Rejoin events take the lowest global seqs — pushed before any
        // dispatch, exactly like the sequential core, so they win
        // pop-order ties at their instant.
        for v in g.nodes() {
            for i in (1..churn[v.index()].len()).step_by(2) {
                let at = churn[v.index()][i];
                let seq = global.seq;
                global.seq += 1;
                shards[plan.shard_of(v)].push(at.get(), seq, Event::Rejoin { node: v });
            }
        }
        for v in g.nodes() {
            if churned_dead(&churn, v, SimTime::ZERO) {
                continue;
            }
            let s = plan.shard_of(v);
            let li = local_of[v.index()] as usize;
            let mut ctx = Context::new(v, SimTime::ZERO, g).with_weights(&global.eff);
            shards[s].states[li].on_start(&mut ctx);
            let (outbox, _out_edges, timers, cancels) = ctx.into_parts();
            // Sequential-order dispatch straight into the shard queues.
            for (to, msg, class) in outbox {
                let eid = g
                    .edge_between(v, to)
                    .expect("context validated the neighbor");
                let w = global.eff[eid.index()];
                let index = global.cost.messages;
                global.cost.record_send(eid, w, class);
                shards[s].node_msg_seq[li] += 1;
                let channel = 2 * eid.index() + usize::from(g.edge(eid).u() != v);
                let decision = global.oracle.decide(&MsgInfo {
                    index,
                    edge: eid,
                    dir: (channel & 1) as u8,
                    weight: w,
                    from: v,
                    to,
                    sent: SimTime::ZERO,
                });
                let delay = match decision {
                    LinkDecision::Drop => {
                        global.cost.drops += 1;
                        continue;
                    }
                    LinkDecision::Deliver { delay } => delay.clamp(1, w.get()),
                };
                let fl = channel_local[channel] as usize;
                let arrival = (SimTime::ZERO + delay).max(shards[s].floors[fl]);
                shards[s].floors[fl] = arrival;
                let seq = global.seq;
                global.seq += 1;
                let recv = plan.shard_of(to);
                shards[recv].push(
                    arrival.get(),
                    seq,
                    Event::Msg(Delivery {
                        to,
                        from: v,
                        msg,
                        sent: SimTime::ZERO,
                        class,
                        edge: eid,
                    }),
                );
            }
            for id in cancels {
                shards[s].cancelled.insert((v, id));
            }
            for delay in timers {
                let id = shards[s].node_timer_seq[li];
                shards[s].node_timer_seq[li] += 1;
                if shards[s].cancelled.remove(&(v, id)) {
                    continue;
                }
                let seq = global.seq;
                global.seq += 1;
                shards[s].push(delay, seq, Event::Timer { node: v, id });
            }
        }

        // ---- The tick loop, k workers. ----
        let mins: Vec<AtomicU64> = shards
            .iter_mut()
            .map(|s| AtomicU64::new(s.queue.next_time().unwrap_or(u64::MAX)))
            .collect();
        let stop = AtomicBool::new(false);
        let barrier = SpinBarrier::new(k);
        let inbox: Vec<Vec<Mutex<InboxBuf<P::Msg>>>> = (0..k)
            .map(|_| (0..k).map(|_| Mutex::new(VecDeque::new())).collect())
            .collect();
        let shards: Vec<Mutex<Shard<P>>> = shards.into_iter().map(Mutex::new).collect();
        let global = Mutex::new(global);
        let trace_cap = self.trace_cap;
        let event_limit = self.event_limit;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(k);
            for me in 0..k {
                let shards = &shards;
                let global = &global;
                let mins = &mins;
                let stop = &stop;
                let barrier = &barrier;
                let inbox = &inbox;
                let channel_local = &channel_local;
                let local_of = &local_of;
                let churn = &churn;
                let drift = &drift;
                let builder = std::thread::Builder::new().name(format!("csp-worker-{me}"));
                let handle = builder
                    .spawn_scoped(scope, move || {
                        let _poison = PoisonOnPanic(barrier);
                        loop {
                            // All mins posted (by start or phase A).
                            if !barrier.wait() {
                                return;
                            }
                            let t = mins.iter().map(|m| m.load(Ordering::Acquire)).min();
                            let t = t.unwrap_or(u64::MAX);
                            if t == u64::MAX || stop.load(Ordering::Acquire) {
                                return;
                            }
                            {
                                let mut shard = shards[me].lock().unwrap();
                                phase_b(&mut shard, g, local_of, churn, drift, t);
                            }
                            if !barrier.wait() {
                                return;
                            }
                            if me == 0 {
                                let mut guards: Vec<_> =
                                    shards.iter().map(|s| s.lock().unwrap()).collect();
                                let mut global = global.lock().unwrap();
                                serial_dispatch(
                                    &mut guards,
                                    &mut global,
                                    g,
                                    drift,
                                    t,
                                    trace_cap,
                                    event_limit,
                                );
                                if global.err.is_some() {
                                    stop.store(true, Ordering::Release);
                                }
                            }
                            if !barrier.wait() {
                                return;
                            }
                            if stop.load(Ordering::Acquire) {
                                return;
                            }
                            {
                                let mut shard = shards[me].lock().unwrap();
                                phase_c(&mut shard, me, g, plan, channel_local, t);
                                for (r, buf) in shard.outbufs.iter_mut().enumerate() {
                                    std::mem::swap(buf, &mut *inbox[r][me].lock().unwrap());
                                }
                            }
                            if !barrier.wait() {
                                return;
                            }
                            {
                                let mut shard = shards[me].lock().unwrap();
                                for (s, stream) in shard.streams.iter_mut().enumerate() {
                                    debug_assert!(stream.is_empty());
                                    std::mem::swap(stream, &mut *inbox[me][s].lock().unwrap());
                                }
                                merge_inboxes(&mut shard);
                                mins[me].store(
                                    shard.queue.next_time().unwrap_or(u64::MAX),
                                    Ordering::Release,
                                );
                            }
                        }
                    })
                    .expect("spawn shard worker");
                handles.push(handle);
            }
            for (i, handle) in handles.into_iter().enumerate() {
                if let Err(payload) = handle.join() {
                    eprintln!("csp-worker-{i} panicked; re-raising on the caller");
                    std::panic::resume_unwind(payload);
                }
            }
        });

        // ---- Reassemble the run. ----
        let mut global = global.into_inner().unwrap();
        if let Some(err) = global.err {
            return Err(err);
        }
        global.cost.bucket_window = BucketQueue::capacity_for(max_delay) as u64;
        let mut states: Vec<Option<P>> = (0..n).map(|_| None).collect();
        for shard in shards {
            let mut shard = shard.into_inner().unwrap();
            global.cost.dead_events += shard.dead_events;
            global.cost.overflow_pushes += shard.queue.overflow_pushes();
            for (v, p) in shard.nodes.iter().zip(shard.states.drain(..)) {
                states[v.index()] = Some(p);
            }
        }
        Ok(Run {
            states: states
                .into_iter()
                .map(|p| p.expect("every vertex assigned"))
                .collect(),
            cost: global.cost,
            truncated: false,
            trace: global.trace,
        })
    }
}

/// Phase B: pop every event scheduled at `t` (in `seq` order) and run
/// the handlers, recording sends/arms into the shard's arenas. Only
/// vertex-local state moves here — the global meters wait for the
/// leader.
fn phase_b<P: Process>(
    shard: &mut Shard<P>,
    g: &WeightedGraph,
    local_of: &[u32],
    churn: &[Vec<SimTime>],
    drift: &[(EdgeId, SimTime, Weight)],
    t: u64,
) {
    shard.recs.clear();
    shard.sends.clear();
    shard.arms.clear();
    shard.decided.clear();
    shard.arm_seqs.clear();
    let now = SimTime::new(t);
    // Revisions with time ≤ t take hold before any handler at this tick
    // runs — the same visibility rule as the sequential pop loop.
    advance_drift(&mut shard.eff, &mut shard.drift_cursor, drift, now);
    while shard.queue.next_time() == Some(t) {
        let (_, seq, slot) = shard.queue.pop().expect("peeked entry exists");
        let event = shard.slab[slot].take().expect("slab slot holds payload");
        shard.free.push(slot);
        let (node, fire) = match event {
            Event::Msg(d) => (d.to, Some(Ok(d))),
            Event::Timer { node, id } => {
                if shard.cancelled.remove(&(node, id)) {
                    continue;
                }
                if id < shard.timer_floor[local_of[node.index()] as usize] {
                    shard.dead_events += 1;
                    continue;
                }
                (node, Some(Err(id)))
            }
            Event::Rejoin { node } => (node, None),
        };
        if churned_dead(churn, node, now) {
            shard.dead_events += 1;
            continue;
        }
        let li = local_of[node.index()] as usize;
        if fire.is_none() {
            // Rejoin: restart the vertex with its stashed fresh state
            // and retire every timer id armed by earlier incarnations.
            let fresh = shard.rejoin_states[li]
                .pop()
                .expect("a fresh state was stashed per scheduled rejoin");
            shard.states[li] = fresh;
            shard.timer_floor[li] = shard.node_timer_seq[li];
        }
        let outbox = std::mem::take(&mut shard.outbox);
        let out_edges = std::mem::take(&mut shard.out_edges);
        let timers = std::mem::take(&mut shard.timers);
        let cancels = std::mem::take(&mut shard.cancels);
        let mut ctx = Context::recycled(
            node,
            now,
            g,
            outbox,
            out_edges,
            timers,
            cancels,
            shard.node_msg_seq[li],
            shard.node_timer_seq[li],
        )
        .with_weights(&shard.eff);
        let msg = match fire {
            Some(Ok(d)) => {
                let meta = MsgMeta {
                    from: d.from,
                    edge: d.edge,
                    sent: d.sent,
                    class: d.class,
                };
                shard.states[li].on_message(d.from, d.msg, &mut ctx);
                Some(meta)
            }
            Some(Err(id)) => {
                shard.states[li].on_timer(TimerId(id), &mut ctx);
                None
            }
            None => {
                shard.states[li].on_start(&mut ctx);
                None
            }
        };
        (shard.outbox, shard.out_edges, shard.timers, shard.cancels) = ctx.into_parts();
        let send_start = shard.sends.len() as u32;
        for ((to, m, class), eid) in shard.outbox.drain(..).zip(shard.out_edges.drain(..)) {
            shard.sends.push((to, m, class, eid));
        }
        shard.node_msg_seq[li] += shard.sends.len() as u64 - u64::from(send_start);
        for id in shard.cancels.drain(..) {
            shard.cancelled.insert((node, id));
        }
        let arm_start = shard.arms.len() as u32;
        for delay in shard.timers.drain(..) {
            let id = shard.node_timer_seq[li];
            shard.node_timer_seq[li] += 1;
            if shard.cancelled.remove(&(node, id)) {
                continue;
            }
            shard.arms.push((id, delay));
        }
        shard.recs.push(HandlerRec {
            seq,
            node,
            msg,
            sends: (send_start, shard.sends.len() as u32),
            arms: (arm_start, shard.arms.len() as u32),
        });
    }
}

/// The leader's serial section: merge every shard's handler records by
/// event `seq` and replay the dispatch side effects — event budget,
/// meters, trace, oracle queries, global push-sequence assignment — in
/// exactly the sequential order.
fn serial_dispatch<P: Process, O: LinkOracle + Send + ?Sized>(
    shards: &mut [impl std::ops::DerefMut<Target = Shard<P>>],
    global: &mut Global<'_, O>,
    g: &WeightedGraph,
    drift: &[(EdgeId, SimTime, Weight)],
    t: u64,
    trace_cap: usize,
    event_limit: u64,
) {
    let now = SimTime::new(t);
    advance_drift(&mut global.eff, &mut global.drift_cursor, drift, now);
    let mut cursor: Vec<usize> = vec![0; shards.len()];
    loop {
        let mut best: Option<(u64, usize)> = None;
        for (s, shard) in shards.iter().enumerate() {
            if let Some(rec) = shard.recs.get(cursor[s]) {
                if best.is_none_or(|(seq, _)| rec.seq < seq) {
                    best = Some((rec.seq, s));
                }
            }
        }
        let Some((_, s)) = best else { break };
        let shard = &mut *shards[s];
        let rec = &shard.recs[cursor[s]];
        cursor[s] += 1;
        global.events += 1;
        if global.events > event_limit {
            // The event that crossed the budget dispatches nothing —
            // the oracle's query count matches the sequential abort.
            global.err = Some(SimError::EventLimitExceeded { limit: event_limit });
            return;
        }
        if let Some(meta) = &rec.msg {
            global.cost.record_delivery(now, meta.class);
            if trace_cap > 0 {
                global.trace.push(TraceEvent {
                    from: meta.from,
                    to: rec.node,
                    edge: meta.edge,
                    sent: meta.sent,
                    delivered: now,
                    class: meta.class,
                });
            }
        }
        let from = rec.node;
        for i in rec.sends.0 as usize..rec.sends.1 as usize {
            let (to, _, class, eid) = &shard.sends[i];
            let (to, class, eid) = (*to, *class, *eid);
            let w = global.eff[eid.index()];
            let index = global.cost.messages;
            global.cost.record_send(eid, w, class);
            let dir = u8::from(g.edge(eid).u() != from);
            let decision = global.oracle.decide(&MsgInfo {
                index,
                edge: eid,
                dir,
                weight: w,
                from,
                to,
                sent: now,
            });
            let fate = match decision {
                LinkDecision::Drop => {
                    global.cost.drops += 1;
                    Fate::Drop
                }
                LinkDecision::Deliver { delay } => {
                    let seq = global.seq;
                    global.seq += 1;
                    Fate::Deliver {
                        delay: delay.clamp(1, w.get()),
                        seq,
                    }
                }
            };
            shard.decided.push(fate);
        }
        for _ in rec.arms.0..rec.arms.1 {
            shard.arm_seqs.push(global.seq);
            global.seq += 1;
        }
    }
}

/// Phase C: walk the shard's own records in order, apply the sender-side
/// FIFO floors to every delivered send, and route each push into the
/// per-receiver outbox buffer. Walking in record order keeps each
/// `(sender, receiver)` stream ascending in `seq`, which phase A's merge
/// and the bucket queue's append contract rely on.
fn phase_c<P: Process>(
    shard: &mut Shard<P>,
    me: usize,
    g: &WeightedGraph,
    plan: &ShardPlan,
    channel_local: &[u32],
    t: u64,
) {
    let now = SimTime::new(t);
    let mut send_i = 0usize;
    let mut arm_i = 0usize;
    let sends = std::mem::take(&mut shard.sends);
    let mut payloads = sends.into_iter();
    for rec in &shard.recs {
        let from = rec.node;
        for _ in rec.sends.0..rec.sends.1 {
            let (to, msg, class, eid) = payloads.next().expect("send arena aligned");
            let fate = shard.decided[send_i];
            send_i += 1;
            let Fate::Deliver { delay, seq } = fate else {
                continue;
            };
            let channel = 2 * eid.index() + usize::from(g.edge(eid).u() != from);
            let fl = channel_local[channel] as usize;
            let arrival = (now + delay).max(shard.floors[fl]);
            shard.floors[fl] = arrival;
            shard.outbufs[plan.shard_of(to)].push_back((
                arrival.get(),
                seq,
                Event::Msg(Delivery {
                    to,
                    from,
                    msg,
                    sent: now,
                    class,
                    edge: eid,
                }),
            ));
        }
        for _ in rec.arms.0..rec.arms.1 {
            let (id, delay) = shard.arms[arm_i];
            let seq = shard.arm_seqs[arm_i];
            arm_i += 1;
            shard.outbufs[me].push_back((t + delay, seq, Event::Timer { node: from, id }));
        }
    }
    // Give the (now spent) sends arena its allocation back.
    shard.sends = {
        let mut v = payloads.collect::<Vec<_>>();
        v.clear();
        v
    };
}

/// Phase A: k-way merge the inbox streams by global `seq` into the
/// shard's queue. Each stream is already ascending, so pushes enter
/// every bucket in `seq` order — the append contract `BucketQueue`
/// debug-asserts.
fn merge_inboxes<P: Process>(shard: &mut Shard<P>) {
    let mut streams = std::mem::take(&mut shard.streams);
    loop {
        let mut best: Option<(u64, usize)> = None;
        for (s, stream) in streams.iter().enumerate() {
            if let Some(&(_, seq, _)) = stream.front() {
                if best.is_none_or(|(b, _)| seq < b) {
                    best = Some((seq, s));
                }
            }
        }
        let Some((_, s)) = best else { break };
        let (time, seq, event) = streams[s].pop_front().expect("front peeked");
        shard.push(time, seq, event);
    }
    shard.streams = streams;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{CrashOracle, DropOracle};
    use crate::process::MsgToken;
    use csp_graph::generators::{self, WeightDist};

    /// Flood + timer chatter: every delivery toggles between arming and
    /// cancelling a timer, and timer fires re-arm a bounded number of
    /// times — exercising sends, arms, cancels and cross-shard traffic
    /// in one protocol. State derives `PartialEq` so differential
    /// checks compare final states exactly (including the per-vertex
    /// `TimerId`s and `MsgToken`s baked into them).
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Pulse {
        root: bool,
        hops: u32,
        pending: Option<TimerId>,
        last_token: Option<MsgToken>,
        fired: u32,
    }

    impl Pulse {
        fn make(root: NodeId) -> impl FnMut(NodeId, &WeightedGraph) -> Pulse {
            move |v, _| Pulse {
                root: v == root,
                hops: 0,
                pending: None,
                last_token: None,
                fired: 0,
            }
        }
    }

    impl Process for Pulse {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if self.root {
                self.last_token = ctx.send_all(0);
            }
            self.pending = Some(ctx.set_timer(3));
        }

        fn on_message(&mut self, _from: NodeId, msg: u32, ctx: &mut Context<'_, u32>) {
            self.hops = self.hops.max(msg);
            if msg < 3 {
                self.last_token = ctx.send_all(msg + 1);
            }
            match self.pending.take() {
                Some(id) => ctx.cancel_timer(id),
                None => self.pending = Some(ctx.set_timer(2)),
            }
        }

        fn on_timer(&mut self, _id: TimerId, ctx: &mut Context<'_, u32>) {
            self.pending = None;
            self.fired += 1;
            if self.fired < 3 {
                self.pending = Some(ctx.set_timer(1));
            }
        }
    }

    fn test_graph(n: usize, seed: u64) -> WeightedGraph {
        generators::connected_gnp(n, 0.15, WeightDist::Uniform(1, 16), seed)
    }

    fn assert_runs_match(seq: &Run<Pulse>, par: &Run<Pulse>, what: &str) {
        assert_eq!(seq.cost, par.cost, "{what}: cost");
        assert_eq!(seq.states, par.states, "{what}: states");
        assert_eq!(seq.truncated, par.truncated, "{what}: truncated");
        assert_eq!(seq.trace.events(), par.trace.events(), "{what}: trace");
        assert_eq!(
            seq.trace.dropped(),
            par.trace.dropped(),
            "{what}: trace cap"
        );
    }

    #[test]
    fn sharded_matches_sequential_under_model_oracles() {
        for seed in [1u64, 7, 42] {
            let g = test_graph(40, seed);
            for kind in [CoreKind::Bucket, CoreKind::Heap] {
                let seq = Simulator::new(&g)
                    .delay(DelayModel::Uniform)
                    .seed(seed)
                    .core(kind)
                    .record_trace(4096)
                    .run(Pulse::make(NodeId::new(0)))
                    .unwrap();
                for threads in [1usize, 2, 4, 8] {
                    let par = ShardedSimulator::new(&g)
                        .delay(DelayModel::Uniform)
                        .seed(seed)
                        .core(kind)
                        .record_trace(4096)
                        .threads(threads)
                        .run(Pulse::make(NodeId::new(0)))
                        .unwrap();
                    assert_runs_match(&seq, &par, &format!("seed {seed} k {threads}"));
                }
            }
        }
    }

    #[test]
    fn drops_and_crashes_match() {
        let g = test_graph(32, 11);
        let oracle = || {
            CrashOracle::new(
                DropOracle::new(DelayModel::Uniform, 5, 0.2, 2),
                vec![
                    (NodeId::new(3), SimTime::new(9)),
                    (NodeId::new(10), SimTime::ZERO),
                ],
            )
        };
        let seq = Simulator::new(&g)
            .record_trace(4096)
            .run_with_oracle(&mut oracle(), Pulse::make(NodeId::new(0)))
            .unwrap();
        for threads in [2usize, 4, 8] {
            let par = ShardedSimulator::new(&g)
                .record_trace(4096)
                .threads(threads)
                .run_with_oracle(&mut oracle(), Pulse::make(NodeId::new(0)))
                .unwrap();
            assert_runs_match(&seq, &par, &format!("faulty k {threads}"));
        }
        assert!(seq.cost.drops > 0, "drop oracle should have dropped");
        assert_eq!(seq.cost.crashed_nodes, 2);
    }

    #[test]
    fn rejoins_and_drift_match_sequential() {
        use crate::delay::ChurnOracle;
        let g = test_graph(32, 23);
        let oracle = || {
            ChurnOracle::new(
                DropOracle::new(DelayModel::Uniform, 5, 0.1, 2),
                vec![
                    // Crash–rejoin, crash–rejoin–recrash, and plain
                    // crash-stop, spread across shards.
                    (NodeId::new(3), vec![SimTime::new(4), SimTime::new(12)]),
                    (
                        NodeId::new(10),
                        vec![SimTime::new(2), SimTime::new(9), SimTime::new(15)],
                    ),
                    (NodeId::new(17), vec![SimTime::new(7)]),
                ],
                vec![
                    (EdgeId::new(0), SimTime::new(5), Weight::new(3)),
                    (EdgeId::new(1), SimTime::new(11), Weight::new(9)),
                ],
            )
        };
        let seq = Simulator::new(&g)
            .record_trace(4096)
            .run_with_oracle(&mut oracle(), Pulse::make(NodeId::new(0)))
            .unwrap();
        assert_eq!(seq.cost.recoveries, 2);
        assert_eq!(seq.cost.weight_revisions, 2);
        assert_eq!(seq.cost.crashed_nodes, 3);
        for threads in [2usize, 4, 8] {
            for kind in [CoreKind::Bucket, CoreKind::Heap] {
                let par = ShardedSimulator::new(&g)
                    .record_trace(4096)
                    .threads(threads)
                    .core(kind)
                    .run_with_oracle(&mut oracle(), Pulse::make(NodeId::new(0)))
                    .unwrap();
                assert_runs_match(&seq, &par, &format!("churn k {threads} {kind:?}"));
            }
        }
    }

    #[test]
    fn comm_limit_delegates_to_sequential() {
        let g = test_graph(24, 3);
        let seq = Simulator::new(&g)
            .comm_limit(40)
            .run(Pulse::make(NodeId::new(0)))
            .unwrap();
        let par = ShardedSimulator::new(&g)
            .comm_limit(40)
            .threads(4)
            .run(Pulse::make(NodeId::new(0)))
            .unwrap();
        assert!(seq.truncated, "budget should truncate this workload");
        assert_eq!(seq.cost, par.cost);
        assert_eq!(seq.states, par.states);
        assert_eq!(seq.truncated, par.truncated);
    }

    #[test]
    fn more_shards_than_vertices() {
        let g = generators::path(3, |_| 2);
        let seq = Simulator::new(&g).run(Pulse::make(NodeId::new(1))).unwrap();
        let par = ShardedSimulator::new(&g)
            .threads(8)
            .run(Pulse::make(NodeId::new(1)))
            .unwrap();
        assert_runs_match(&seq, &par, "k > n");
    }

    #[test]
    fn event_limit_error_matches() {
        let g = test_graph(24, 19);
        let seq = Simulator::new(&g)
            .event_limit(10)
            .run(Pulse::make(NodeId::new(0)));
        let par = ShardedSimulator::new(&g)
            .event_limit(10)
            .threads(4)
            .run(Pulse::make(NodeId::new(0)));
        assert_eq!(
            seq.unwrap_err(),
            par.unwrap_err(),
            "budget abort must agree"
        );
    }

    #[test]
    fn explicit_plan_is_honored() {
        let g = test_graph(20, 2);
        let plan = ShardPlan::contiguous(20, 3);
        let seq = Simulator::new(&g).run(Pulse::make(NodeId::new(0))).unwrap();
        let par = ShardedSimulator::new(&g)
            .threads(3)
            .plan(plan)
            .run(Pulse::make(NodeId::new(0)))
            .unwrap();
        assert_runs_match(&seq, &par, "contiguous plan");
    }
}
