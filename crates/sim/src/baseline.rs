//! Reference `HashMap`-based event loop, kept for differential testing.
//!
//! [`BaselineSimulator`] is the original implementation of the
//! asynchronous runtime: payloads in a `HashMap<u64, Delivery>` keyed by
//! sequence number, FIFO floors in a `HashMap<usize, SimTime>` keyed by
//! `from·n + to`, and a freshly allocated outbox per event. The flat-array
//! core in [`crate::runtime`] replaced it in the hot path; this copy
//! stays as the executable specification the optimized core is checked
//! against (see the `flat_core_differential` test suite) and as the
//! before-side of the `sim_core_bench` microbenchmark.
//!
//! Semantics match [`crate::runtime::Simulator`] exactly for runs without
//! a communication budget. With [`BaselineSimulator::comm_limit`] set it
//! keeps the *historical* behavior of checking the budget one event late
//! at delivery time — the bug the optimized core fixes — so differential
//! comparisons must not set a budget.

use crate::cost::{CostClass, CostReport};
use crate::delay::{DelayModel, LinkDecision, LinkOracle, ModelOracle, MsgInfo};
use crate::process::{Context, Process};
use crate::queue::BucketQueue;
use crate::runtime::{Run, SimError};
use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent};
use csp_graph::{NodeId, WeightedGraph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The pre-flat-core simulator. Same builder API as
/// [`crate::runtime::Simulator`]; see the [module docs](self) for why it
/// is kept around.
#[derive(Debug)]
pub struct BaselineSimulator<'g> {
    graph: &'g WeightedGraph,
    delay: DelayModel,
    seed: u64,
    event_limit: u64,
    comm_limit: Option<u128>,
    trace_cap: usize,
}

impl<'g> BaselineSimulator<'g> {
    /// Creates a baseline simulator with worst-case delays, seed 0 and a
    /// 100-million-event budget.
    pub fn new(graph: &'g WeightedGraph) -> Self {
        BaselineSimulator {
            graph,
            delay: DelayModel::WorstCase,
            seed: 0,
            event_limit: 100_000_000,
            comm_limit: None,
            trace_cap: 0,
        }
    }

    /// Sets the delay model.
    pub fn delay(&mut self, delay: DelayModel) -> &mut Self {
        self.delay = delay;
        self
    }

    /// Sets the seed for randomized delay models.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the event budget.
    pub fn event_limit(&mut self, limit: u64) -> &mut Self {
        self.event_limit = limit;
        self
    }

    /// Records up to `cap` delivered messages into [`Run::trace`].
    pub fn record_trace(&mut self, cap: usize) -> &mut Self {
        self.trace_cap = cap;
        self
    }

    /// Caps the weighted communication with the *historical* late check:
    /// the budget is tested at delivery time, one event after it was
    /// exceeded. Kept verbatim so the baseline stays a faithful snapshot;
    /// use [`crate::runtime::Simulator`] for correct budget enforcement.
    pub fn comm_limit(&mut self, limit: u128) -> &mut Self {
        self.comm_limit = Some(limit);
        self
    }

    /// Runs `make(v, graph)`-constructed processes to quiescence.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the protocol does not
    /// quiesce within the event budget.
    pub fn run<P, F>(&self, make: F) -> Result<Run<P>, SimError>
    where
        P: Process,
        F: FnMut(NodeId, &WeightedGraph) -> P,
    {
        self.run_with_oracle(&mut ModelOracle::new(self.delay, self.seed), make)
    }

    /// Runs with every message's fate decided by `oracle` — the same
    /// dispatch-time hook as
    /// [`Simulator::run_with_oracle`](crate::Simulator::run_with_oracle),
    /// so the differential suite can compare both cores under arbitrary
    /// adversaries (drops and crashes included). The configured
    /// [`DelayModel`] and seed are ignored on this path.
    ///
    /// The baseline has no timer facility: a handler that arms or
    /// cancels a timer panics here rather than silently never firing.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the protocol does not
    /// quiesce within the event budget.
    pub fn run_with_oracle<P, F, O>(&self, oracle: &mut O, mut make: F) -> Result<Run<P>, SimError>
    where
        P: Process,
        F: FnMut(NodeId, &WeightedGraph) -> P,
        O: LinkOracle + ?Sized,
    {
        let g = self.graph;
        let n = g.node_count();
        let mut states: Vec<P> = g.nodes().map(|v| make(v, g)).collect();
        let mut cost = CostReport::new(g.edge_count());
        // The baseline predates churn: it understands the crash-stop
        // special case only, and rejects anything richer loudly rather
        // than silently diverging from the flat core. Plans are queried
        // in the same per-vertex-then-drift order as the flat core, so
        // a recording oracle sees an identical stream.
        let crash: Vec<Option<SimTime>> = g
            .nodes()
            .map(|v| {
                let plan = oracle.churn_plan(v);
                assert!(
                    plan.len() <= 1,
                    "BaselineSimulator understands crash-stop only; vertex {v} has a rejoin scheduled"
                );
                plan.first().copied()
            })
            .collect();
        assert!(
            oracle.drift_plan().is_empty(),
            "BaselineSimulator does not support weight drift"
        );
        cost.crashed_nodes = crash.iter().filter(|c| c.is_some()).count() as u64;
        let crashed = |v: NodeId, now: SimTime| crash[v.index()].is_some_and(|t| now >= t);

        // Min-heap of (time, seq) -> delivery.
        struct Delivery<M> {
            to: NodeId,
            from: NodeId,
            msg: M,
            sent: SimTime,
            class: CostClass,
        }
        let mut queue: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
        let mut payloads: std::collections::HashMap<u64, Delivery<P::Msg>> =
            std::collections::HashMap::new();
        let mut seq: u64 = 0;
        // FIFO floor per directed edge: key = from * n + to.
        let mut fifo_floor: std::collections::HashMap<usize, SimTime> =
            std::collections::HashMap::new();

        let dispatch = |outbox: Vec<(NodeId, P::Msg, CostClass)>,
                        from: NodeId,
                        now: SimTime,
                        queue: &mut BinaryHeap<Reverse<(SimTime, u64)>>,
                        payloads: &mut std::collections::HashMap<u64, Delivery<P::Msg>>,
                        fifo_floor: &mut std::collections::HashMap<usize, SimTime>,
                        seq: &mut u64,
                        cost: &mut CostReport,
                        oracle: &mut O| {
            for (to, msg, class) in outbox {
                let eid = g
                    .edge_between(from, to)
                    .expect("context validated the neighbor");
                let w = g.weight(eid);
                let index = cost.messages;
                cost.record_send(eid, w, class);
                let info = MsgInfo {
                    index,
                    edge: eid,
                    dir: u8::from(g.edge(eid).u() != from),
                    weight: w,
                    from,
                    to,
                    sent: now,
                };
                let delay = match oracle.decide(&info) {
                    // Same drop semantics as the flat core: paid for,
                    // index consumed, never enqueued, floor untouched.
                    LinkDecision::Drop => {
                        cost.drops += 1;
                        continue;
                    }
                    LinkDecision::Deliver { delay } => delay.clamp(1, w.get()),
                };
                let mut arrival = now + delay;
                let key = from.index() * n + to.index();
                if let Some(&floor) = fifo_floor.get(&key) {
                    arrival = arrival.max(floor);
                }
                fifo_floor.insert(key, arrival);
                // Same observational hook as the flat core, so an
                // arrival-observing oracle sees an identical stream.
                oracle.observe_arrival(&info, arrival);
                queue.push(Reverse((arrival, *seq)));
                payloads.insert(
                    *seq,
                    Delivery {
                        to,
                        from,
                        msg,
                        sent: now,
                        class,
                    },
                );
                *seq += 1;
            }
        };

        // Time zero: start every vertex (crashed-at-zero ones excepted).
        for v in g.nodes() {
            if crashed(v, SimTime::ZERO) {
                continue;
            }
            let mut ctx = Context::new(v, SimTime::ZERO, g);
            states[v.index()].on_start(&mut ctx);
            assert!(
                !ctx.has_timer_ops(),
                "BaselineSimulator has no timer facility"
            );
            dispatch(
                ctx.take_outbox(),
                v,
                SimTime::ZERO,
                &mut queue,
                &mut payloads,
                &mut fifo_floor,
                &mut seq,
                &mut cost,
                &mut *oracle,
            );
        }

        let mut events: u64 = 0;
        let mut truncated = false;
        let mut trace = Trace::new(self.trace_cap);
        while let Some(Reverse((now, id))) = queue.pop() {
            events += 1;
            if events > self.event_limit {
                return Err(SimError::EventLimitExceeded {
                    limit: self.event_limit,
                });
            }
            if self
                .comm_limit
                .is_some_and(|lim| cost.weighted_comm.raw() > lim)
            {
                truncated = true;
                break;
            }
            let Delivery {
                to,
                from,
                msg,
                sent,
                class,
            } = payloads.remove(&id).expect("payload for event");
            if crashed(to, now) {
                // A dead vertex consumes its deliveries silently — same
                // semantics as the flat core, which does not count the
                // pop as an event either.
                events -= 1;
                cost.dead_events += 1;
                continue;
            }
            cost.record_delivery(now, class);
            if self.trace_cap > 0 {
                let eid = g.edge_between(from, to).expect("delivery edge exists");
                trace.push(TraceEvent {
                    from,
                    to,
                    edge: eid,
                    sent,
                    delivered: now,
                    class,
                });
            }
            let mut ctx = Context::new(to, now, g);
            states[to.index()].on_message(from, msg, &mut ctx);
            assert!(
                !ctx.has_timer_ops(),
                "BaselineSimulator has no timer facility"
            );
            dispatch(
                ctx.take_outbox(),
                to,
                now,
                &mut queue,
                &mut payloads,
                &mut fifo_floor,
                &mut seq,
                &mut cost,
                &mut *oracle,
            );
        }

        // The window is a workload property shared with the optimized
        // cores (differential comparisons check full report equality);
        // the baseline's `BinaryHeap` never overflows, matching the
        // in-window bucket-core count of zero.
        cost.bucket_window = BucketQueue::capacity_for(g.max_weight().get()) as u64;
        Ok(Run {
            states,
            cost,
            truncated,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Simulator;
    use csp_graph::generators::{self, WeightDist};

    /// Floods one numbered token outward; replies when it terminates.
    struct Flood {
        seen: bool,
    }

    impl Process for Flood {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.self_id() == NodeId::new(0) {
                self.seen = true;
                ctx.send_all(0);
            }
        }
        fn on_message(&mut self, _from: NodeId, hops: u32, ctx: &mut Context<'_, u32>) {
            if !self.seen {
                self.seen = true;
                ctx.send_all(hops + 1);
            }
        }
    }

    #[test]
    fn baseline_matches_flat_core_on_flood() {
        let g = generators::connected_gnp(12, 0.3, WeightDist::Uniform(1, 16), 42);
        for seed in 0..4 {
            let base = BaselineSimulator::new(&g)
                .delay(DelayModel::Uniform)
                .seed(seed)
                .record_trace(4096)
                .run(|_, _| Flood { seen: false })
                .unwrap();
            let flat = Simulator::new(&g)
                .delay(DelayModel::Uniform)
                .seed(seed)
                .record_trace(4096)
                .run(|_, _| Flood { seen: false })
                .unwrap();
            assert_eq!(base.cost, flat.cost, "cost diverged at seed {seed}");
            assert_eq!(
                base.trace.events(),
                flat.trace.events(),
                "trace diverged at seed {seed}"
            );
        }
    }
}
