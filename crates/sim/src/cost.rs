//! Cost-sensitive accounting.
//!
//! Every message send is metered: the *weighted communication complexity*
//! is the sum of `w(e)` over all transmissions (Section 1.3 of the paper),
//! and the *time complexity* is the completion time of the run. Messages
//! can additionally be tagged with a [`CostClass`] so that, e.g., a
//! synchronizer's control overhead can be reported separately from the
//! client protocol's own traffic.

use crate::time::SimTime;
use csp_graph::{Cost, EdgeId, Weight};
use std::fmt;

/// A coarse label distinguishing message categories in a [`CostReport`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum CostClass {
    /// The client protocol's own messages (the default).
    #[default]
    Protocol,
    /// Synchronizer pulses, safety reports and acknowledgments.
    Synchronizer,
    /// Controller requests and permits.
    Controller,
    /// Anything else (wake-up floods, estimates, bookkeeping).
    Auxiliary,
}

impl CostClass {
    /// All classes, in report order.
    pub const ALL: [CostClass; 4] = [
        CostClass::Protocol,
        CostClass::Synchronizer,
        CostClass::Controller,
        CostClass::Auxiliary,
    ];

    #[inline]
    pub(crate) fn index(self) -> usize {
        match self {
            CostClass::Protocol => 0,
            CostClass::Synchronizer => 1,
            CostClass::Controller => 2,
            CostClass::Auxiliary => 3,
        }
    }
}

impl fmt::Display for CostClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CostClass::Protocol => "protocol",
            CostClass::Synchronizer => "synchronizer",
            CostClass::Controller => "controller",
            CostClass::Auxiliary => "auxiliary",
        };
        f.write_str(name)
    }
}

/// Aggregate cost of a protocol run.
///
/// Equality compares the *metered* quantities — messages, weighted
/// communication, completion, per-class/per-edge breakdowns, fault
/// meters and the workload's [`bucket_window`](CostReport::bucket_window).
/// The scheduler statistic
/// [`overflow_pushes`](CostReport::overflow_pushes) is excluded: it
/// describes which executor ran the workload (heap cores and the
/// baseline structurally report zero; bucket cores count window
/// spills, e.g. from retransmission timers armed past `W`), so
/// including it would break the cross-core differential contract that
/// identical runs produce equal reports.
#[derive(Debug, Default)]
pub struct CostReport {
    /// Total number of messages sent.
    pub messages: u64,
    /// Weighted communication complexity: `Σ w(e)` over all sends.
    pub weighted_comm: Cost,
    /// Completion time (time of the last delivered event).
    pub completion: SimTime,
    /// Completion time per [`CostClass`]: when the last message of each
    /// class was delivered (`ZERO` for classes that delivered nothing).
    /// Separates, e.g., the instant a protocol's own traffic settled
    /// after a churn event from the tail of a detector's heartbeat
    /// schedule — the quantity the post-heal reconvergence verifier
    /// bounds. Maintained by the asynchronous executors; the
    /// synchronous runner reports zeros.
    pub completion_by_class: [SimTime; 4],
    /// Message counts per [`CostClass`].
    pub messages_by_class: [u64; 4],
    /// Weighted communication per [`CostClass`].
    pub comm_by_class: [Cost; 4],
    /// Per-edge message counts (both directions combined), indexed by
    /// [`EdgeId`].
    pub per_edge_messages: Vec<u64>,
    /// Messages the adversary dropped: metered (the sender paid) and
    /// counted in [`CostReport::messages`], but never delivered.
    pub drops: u64,
    /// Vertices the adversary assigned a crash time
    /// ([`LinkOracle::crash_at`](crate::LinkOracle::crash_at) returned
    /// `Some`), whether or not the run lasted long enough to reach it.
    pub crashed_nodes: u64,
    /// Events (deliveries and timer fires) silently consumed by a
    /// crashed vertex — traffic paid for but lost to a dead receiver.
    pub dead_events: u64,
    /// Rejoins in the adversary's churn plans
    /// ([`LinkOracle::churn_plan`](crate::LinkOracle::churn_plan)):
    /// vertices restarting with fresh protocol state, counted whether or
    /// not the run lasted long enough to reach them.
    pub recoveries: u64,
    /// Mid-run edge-weight revisions in the adversary's drift plan
    /// ([`LinkOracle::drift_plan`](crate::LinkOracle::drift_plan)).
    pub weight_revisions: u64,
    /// Scheduling-queue pushes that landed beyond the bucket core's
    /// window and fell back to the overflow heap
    /// ([`BucketQueue::overflow_pushes`](crate::queue::BucketQueue::overflow_pushes)).
    /// Zero on the heap core and the baseline (they have no window), and
    /// zero on the bucket core whenever the workload's maximum delay
    /// fits the auto-sized window — so any non-zero value flags the
    /// slow-path fallback without consumers reaching into the queue.
    /// Same-kind checkpoint resumes carry the counter exactly; a
    /// cross-kind resume rebuilds the queue and re-counts the restored
    /// entries, so only the zero/non-zero signal is portable there.
    /// Timer pushes share the queue, so timeouts armed beyond `W`
    /// (retransmission backoff, failure-detector horizons) can overflow
    /// even when message delays fit — which is why this field does
    /// **not** participate in [`CostReport`] equality.
    pub overflow_pushes: u64,
    /// The bucket window (bucket count) the workload sizes to:
    /// [`BucketQueue::capacity_for`](crate::queue::BucketQueue::capacity_for)
    /// of the graph's maximum weight. A property of the workload, not of
    /// the core that ran it — every executor reports the same value, so
    /// cross-core differential equality is preserved. Together with
    /// [`CostReport::overflow_pushes`] this tells a consumer how close
    /// the run sat to the window cap.
    pub bucket_window: u64,
}

// Manual `PartialEq`: every metered field except `overflow_pushes`
// (see the struct docs for why the scheduler statistic is excluded).
impl PartialEq for CostReport {
    fn eq(&self, other: &Self) -> bool {
        self.messages == other.messages
            && self.weighted_comm == other.weighted_comm
            && self.completion == other.completion
            && self.completion_by_class == other.completion_by_class
            && self.messages_by_class == other.messages_by_class
            && self.comm_by_class == other.comm_by_class
            && self.per_edge_messages == other.per_edge_messages
            && self.drops == other.drops
            && self.crashed_nodes == other.crashed_nodes
            && self.dead_events == other.dead_events
            && self.recoveries == other.recoveries
            && self.weight_revisions == other.weight_revisions
            && self.bucket_window == other.bucket_window
    }
}

impl Eq for CostReport {}

// Manual `Clone` so `clone_from` reuses the per-edge buffer — the hot
// checkpoint-restore path in the pooled evaluator assigns reports in a
// loop.
impl Clone for CostReport {
    fn clone(&self) -> Self {
        CostReport {
            messages: self.messages,
            weighted_comm: self.weighted_comm,
            completion: self.completion,
            completion_by_class: self.completion_by_class,
            messages_by_class: self.messages_by_class,
            comm_by_class: self.comm_by_class,
            per_edge_messages: self.per_edge_messages.clone(),
            drops: self.drops,
            crashed_nodes: self.crashed_nodes,
            dead_events: self.dead_events,
            recoveries: self.recoveries,
            weight_revisions: self.weight_revisions,
            overflow_pushes: self.overflow_pushes,
            bucket_window: self.bucket_window,
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.messages = src.messages;
        self.weighted_comm = src.weighted_comm;
        self.completion = src.completion;
        self.completion_by_class = src.completion_by_class;
        self.messages_by_class = src.messages_by_class;
        self.comm_by_class = src.comm_by_class;
        self.per_edge_messages.clone_from(&src.per_edge_messages);
        self.drops = src.drops;
        self.crashed_nodes = src.crashed_nodes;
        self.dead_events = src.dead_events;
        self.recoveries = src.recoveries;
        self.weight_revisions = src.weight_revisions;
        self.overflow_pushes = src.overflow_pushes;
        self.bucket_window = src.bucket_window;
    }
}

impl CostReport {
    /// Creates an empty report for a graph with `m` edges.
    pub fn new(m: usize) -> Self {
        CostReport {
            per_edge_messages: vec![0; m],
            ..CostReport::default()
        }
    }

    /// Zeroes every meter in place for a graph with `m` edges, keeping
    /// the per-edge buffer's allocation (pooled-evaluation reuse).
    pub fn reset(&mut self, m: usize) {
        self.messages = 0;
        self.weighted_comm = Cost::default();
        self.completion = SimTime::ZERO;
        self.completion_by_class = [SimTime::ZERO; 4];
        self.messages_by_class = [0; 4];
        self.comm_by_class = [Cost::default(); 4];
        self.per_edge_messages.clear();
        self.per_edge_messages.resize(m, 0);
        self.drops = 0;
        self.crashed_nodes = 0;
        self.dead_events = 0;
        self.recoveries = 0;
        self.weight_revisions = 0;
        self.overflow_pushes = 0;
        self.bucket_window = 0;
    }

    /// Meters one send of weight `w` on edge `e` under `class`.
    pub fn record_send(&mut self, e: EdgeId, w: Weight, class: CostClass) {
        self.messages += 1;
        self.weighted_comm += w;
        self.messages_by_class[class.index()] += 1;
        self.comm_by_class[class.index()] += w.to_cost();
        self.per_edge_messages[e.index()] += 1;
    }

    /// Weighted communication attributed to one class.
    pub fn comm_of(&self, class: CostClass) -> Cost {
        self.comm_by_class[class.index()]
    }

    /// Message count attributed to one class.
    pub fn messages_of(&self, class: CostClass) -> u64 {
        self.messages_by_class[class.index()]
    }

    /// Delivery time of the last message of one class (`ZERO` if the
    /// class delivered nothing).
    pub fn completion_of(&self, class: CostClass) -> SimTime {
        self.completion_by_class[class.index()]
    }

    /// Meters one delivery at `now` under `class`: advances the run's
    /// completion time and the class's own.
    pub fn record_delivery(&mut self, now: SimTime, class: CostClass) {
        self.completion = self.completion.max(now);
        let slot = &mut self.completion_by_class[class.index()];
        *slot = (*slot).max(now);
    }

    /// The maximum number of messages any single edge carried
    /// (a congestion measure).
    pub fn max_edge_congestion(&self) -> u64 {
        self.per_edge_messages.iter().copied().max().unwrap_or(0)
    }

    /// Whether the adversary injected any fault this run (drops, crashes
    /// or crash-consumed events).
    pub fn has_faults(&self) -> bool {
        self.drops > 0 || self.crashed_nodes > 0 || self.dead_events > 0
    }

    /// Whether the adversary churned the network beyond crash-stop:
    /// rejoins or mid-run weight revisions.
    pub fn has_churn(&self) -> bool {
        self.recoveries > 0 || self.weight_revisions > 0
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "msgs={} comm={} time={}",
            self.messages, self.weighted_comm, self.completion
        )?;
        // Fault meters only appear when an adversary actually injected
        // faults, so fault-free reports keep the historical format.
        if self.has_faults() {
            write!(
                f,
                " drops={} crashes={} dead={}",
                self.drops, self.crashed_nodes, self.dead_events
            )?;
        }
        // Likewise the churn meters: crash-stop reports keep the
        // fault-meter format above byte for byte.
        if self.has_churn() {
            write!(
                f,
                " recoveries={} drifts={}",
                self.recoveries, self.weight_revisions
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut r = CostReport::new(3);
        r.record_send(EdgeId::new(0), Weight::new(4), CostClass::Protocol);
        r.record_send(EdgeId::new(0), Weight::new(4), CostClass::Synchronizer);
        r.record_send(EdgeId::new(2), Weight::new(1), CostClass::Protocol);
        assert_eq!(r.messages, 3);
        assert_eq!(r.weighted_comm, Cost::new(9));
        assert_eq!(r.comm_of(CostClass::Protocol), Cost::new(5));
        assert_eq!(r.comm_of(CostClass::Synchronizer), Cost::new(4));
        assert_eq!(r.messages_of(CostClass::Controller), 0);
        assert_eq!(r.per_edge_messages, vec![2, 0, 1]);
        assert_eq!(r.max_edge_congestion(), 2);
    }

    #[test]
    fn classes_cover_indices() {
        for (i, c) in CostClass::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn display() {
        let mut r = CostReport::new(1);
        r.record_send(EdgeId::new(0), Weight::new(2), CostClass::Protocol);
        r.completion = SimTime::new(5);
        assert_eq!(r.to_string(), "msgs=1 comm=2 time=t=5");
    }

    #[test]
    fn display_surfaces_fault_meters() {
        let mut r = CostReport::new(1);
        r.record_send(EdgeId::new(0), Weight::new(2), CostClass::Protocol);
        r.completion = SimTime::new(5);
        r.drops = 3;
        r.crashed_nodes = 1;
        r.dead_events = 2;
        assert!(r.has_faults());
        assert_eq!(
            r.to_string(),
            "msgs=1 comm=2 time=t=5 drops=3 crashes=1 dead=2"
        );
    }

    #[test]
    fn display_surfaces_churn_meters() {
        let mut r = CostReport::new(1);
        r.record_send(EdgeId::new(0), Weight::new(2), CostClass::Protocol);
        r.completion = SimTime::new(5);
        r.crashed_nodes = 2;
        r.dead_events = 1;
        r.recoveries = 2;
        r.weight_revisions = 3;
        assert!(r.has_churn());
        assert_eq!(
            r.to_string(),
            "msgs=1 comm=2 time=t=5 drops=0 crashes=2 dead=1 recoveries=2 drifts=3"
        );
        // Churn meters participate in equality and survive clone_from.
        let mut copy = CostReport::new(0);
        copy.clone_from(&r);
        assert_eq!(copy, r);
        copy.recoveries = 0;
        assert_ne!(copy, r);
        r.reset(1);
        assert!(!r.has_churn());
    }

    #[test]
    fn equality_ignores_overflow_pushes_but_not_window() {
        let mut a = CostReport::new(1);
        let mut b = a.clone();
        a.overflow_pushes = 40;
        assert_eq!(a, b, "scheduler statistic must not break equality");
        b.bucket_window = 128;
        assert_ne!(a, b, "the window is a workload property");
    }

    #[test]
    fn reset_clears_fault_meters() {
        let mut r = CostReport::new(2);
        r.drops = 5;
        r.crashed_nodes = 2;
        r.dead_events = 7;
        r.reset(2);
        assert!(!r.has_faults());
        let mut copy = CostReport::new(0);
        r.drops = 1;
        copy.clone_from(&r);
        assert_eq!(copy, r);
    }
}
