#![deny(missing_docs)]

//! Deterministic simulator for weighted asynchronous networks.
//!
//! This crate realizes the execution model of *Cost-Sensitive Analysis of
//! Communication Protocols* (Awerbuch–Baratz–Peleg):
//!
//! * transmitting a message over edge `e` **costs** `w(e)` — summed into
//!   the weighted communication complexity;
//! * the **delay** of edge `e` varies between (effectively) zero and
//!   `w(e)` — chosen by a pluggable [`DelayModel`]; the protocol's time
//!   complexity is the completion time under the worst-case model.
//!
//! Protocols are pure message-driven state machines implementing
//! [`Process`]; [`Simulator`] owns scheduling, delivers messages with
//! per-edge FIFO order, meters every send into a [`CostReport`], and runs
//! until quiescence.
//!
//! A lock-step **weighted synchronous executor** ([`SyncRunner`]) is also
//! provided: a message sent at pulse `p` over edge `e` is delivered at
//! pulse `p + w(e)` exactly. It is both a direct execution platform for
//! synchronous protocols and the reference semantics that the network
//! synchronizer γ_w (in `csp-sync`) must reproduce.
//!
//! # Example
//!
//! ```
//! use csp_graph::{generators, NodeId};
//! use csp_sim::{DelayModel, Process, Context, Simulator};
//!
//! /// Trivial flooding: forward the token the first time you see it.
//! struct Flood { seen: bool }
//!
//! impl Process for Flood {
//!     type Msg = ();
//!     fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
//!         if ctx.self_id() == NodeId::new(0) {
//!             self.seen = true;
//!             ctx.send_all(());
//!         }
//!     }
//!     fn on_message(&mut self, _from: NodeId, _msg: (), ctx: &mut Context<'_, ()>) {
//!         if !self.seen {
//!             self.seen = true;
//!             ctx.send_all(());
//!         }
//!     }
//! }
//!
//! let g = generators::cycle(6, |_| 2);
//! let run = Simulator::new(&g)
//!     .delay(DelayModel::WorstCase)
//!     .run(|_, _| Flood { seen: false })?;
//! assert!(run.states.iter().all(|f| f.seen));
//! // Every edge carried the token in at least one direction.
//! assert!(run.cost.messages >= 6);
//! # Ok::<(), csp_sim::SimError>(())
//! ```

pub mod baseline;
pub mod cost;
pub mod delay;
pub mod detect;
pub mod process;
pub mod queue;
pub mod reliable;
pub mod runtime;
pub mod shard;
pub mod sweep;
pub mod sync;
pub mod time;
pub mod trace;

pub use baseline::BaselineSimulator;
pub use cost::{CostClass, CostReport};
pub use delay::{
    ChurnOracle, CrashOracle, DelayModel, DelayOracle, DropOracle, LinkDecision, LinkOracle,
    ModelOracle, MsgInfo,
};
pub use detect::{Detect, DetectConfig, DetectMsg, FaultAware};
pub use process::{Context, MsgToken, Process, TimerId};
pub use reliable::{RelMsg, Reliable};
pub use runtime::{Checkpoint, CoreKind, EvalPool, EvalSummary, Run, SimError, Simulator};
pub use shard::ShardedSimulator;
pub use sweep::{
    effective_threads, par_map, par_map_with, summarize, SweepGrid, SweepPoint, SweepRun,
    SweepSummary,
};
pub use sync::{SyncContext, SyncProcess, SyncRun, SyncRunner};
pub use time::SimTime;
pub use trace::{Trace, TraceEvent};
