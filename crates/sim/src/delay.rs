//! Edge delay models and the dispatch-time delay oracle.
//!
//! The paper's time complexity is defined against an adversary that may
//! delay each message on edge `e` by anything in `[0, w(e)]`. The
//! simulator realizes a spectrum of adversaries, from the fixed per-edge
//! policies of [`DelayModel`] up to fully general per-message
//! [`DelayOracle`]s (the `csp-adversary` crate builds schedule search,
//! record/replay and counterexample shrinking on top of the oracle hook).
//!
//! **Quantization deviation (stated here, once).** Delays are quantized
//! to at least one tick so that every run has finitely many events per
//! time unit; this shifts the adversary's range from the paper's
//! `[0, w(e)]` to `[1, w(e)]`, which changes no asymptotic statement
//! (all weights are ≥ 1). The runtime enforces the range by clamping
//! every oracle decision into `[1, w(e)]`. This is the one in-code home
//! of the deviation; the corresponding row of DESIGN.md's
//! implementation-deviation table links back here so the two cannot
//! drift.

use crate::time::SimTime;
use csp_graph::{EdgeId, NodeId, Weight};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How message delays are chosen.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DelayModel {
    /// Every message takes exactly `w(e)` — the worst-case adversary, and
    /// the model under which the paper's time bounds are stated.
    #[default]
    WorstCase,
    /// Uniformly random in `[1, w(e)]`, drawn from the simulator's seeded
    /// generator.
    Uniform,
    /// Every message takes exactly `max(1, w(e)·num/den)` — a "partially
    /// loaded" network.
    Proportional {
        /// Numerator of the load fraction.
        num: u64,
        /// Denominator of the load fraction.
        den: u64,
    },
    /// Every message takes exactly 1 tick regardless of weight — the
    /// most favorable schedule (weights then act only as *costs*).
    Eager,
}

impl DelayModel {
    /// Samples the delay for one message on an edge of weight `w`.
    pub fn sample(self, w: Weight, rng: &mut StdRng) -> u64 {
        match self {
            DelayModel::WorstCase => w.get(),
            DelayModel::Uniform => rng.random_range(1..=w.get()),
            DelayModel::Proportional { num, den } => {
                assert!(den > 0, "proportional delay denominator must be nonzero");
                (w.get().saturating_mul(num) / den).clamp(1, w.get())
            }
            DelayModel::Eager => 1,
        }
    }
}

/// Everything known about one message at the moment its delay is decided
/// (dispatch time), handed to a [`DelayOracle`].
///
/// `index` is the global dispatch index: the i-th metered send of the run
/// has `index == i`. Runs are deterministic given an oracle, so the index
/// names the same message across a record/replay pair — the property the
/// `csp-adversary` schedule format relies on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MsgInfo {
    /// Global dispatch index of this message (0-based send order).
    pub index: u64,
    /// The edge the message crosses.
    pub edge: EdgeId,
    /// Direction bit: `0` when the sender is the edge's `u` endpoint,
    /// `1` otherwise — the same encoding as the runtime's FIFO channels.
    pub dir: u8,
    /// Weight of the edge (the adversary may pick any delay in
    /// `[1, w]`).
    pub weight: Weight,
    /// Sending vertex.
    pub from: NodeId,
    /// Receiving vertex.
    pub to: NodeId,
    /// Simulated time at which the message is sent.
    pub sent: SimTime,
}

/// Decides each message's delay at dispatch time.
///
/// This is the simulator's adversary interface: the oracle sees the full
/// dispatch context ([`MsgInfo`]) and returns a delay in ticks. The
/// runtime clamps the returned value into `[1, w(e)]` (see the
/// [module docs](self) for why the floor is 1), and per-directed-edge
/// FIFO order is still enforced afterwards, so an oracle can never
/// reorder a channel — only stretch or squeeze it.
///
/// Oracles are stateful (`&mut self`): recording, replaying and
/// search-strategy oracles all need memory. The fixed [`DelayModel`]
/// policies are re-expressed as the stateless-per-message
/// [`ModelOracle`].
pub trait DelayOracle {
    /// Returns the delay, in ticks, of the message described by `msg`.
    ///
    /// Values outside `[1, w(e)]` are clamped by the runtime, so `0`
    /// means "as fast as the model allows" and `u64::MAX` means "as slow
    /// as the adversary may be".
    fn delay(&mut self, msg: &MsgInfo) -> u64;
}

/// A [`DelayModel`] plus its seeded generator, as a [`DelayOracle`].
///
/// [`Simulator::run`](crate::Simulator::run) is defined as
/// `run_with_oracle` over a `ModelOracle`, so a model-driven run and the
/// equivalent oracle-driven run are bit-identical by construction
/// (pinned by the `flat_core_differential` suite).
#[derive(Clone, Debug)]
pub struct ModelOracle {
    model: DelayModel,
    rng: StdRng,
}

impl ModelOracle {
    /// Wraps `model` with a generator seeded from `seed` — the same
    /// construction [`Simulator::run`](crate::Simulator::run) uses.
    pub fn new(model: DelayModel, seed: u64) -> Self {
        ModelOracle {
            model,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DelayOracle for ModelOracle {
    fn delay(&mut self, msg: &MsgInfo) -> u64 {
        self.model.sample(msg.weight, &mut self.rng)
    }
}

impl<O: DelayOracle + ?Sized> DelayOracle for &mut O {
    fn delay(&mut self, msg: &MsgInfo) -> u64 {
        (**self).delay(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn worst_case_is_weight() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(DelayModel::WorstCase.sample(Weight::new(7), &mut rng), 7);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let d = DelayModel::Uniform.sample(Weight::new(9), &mut rng);
            assert!((1..=9).contains(&d));
        }
    }

    #[test]
    fn uniform_is_seeded_deterministic() {
        let sample = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..10)
                .map(|_| DelayModel::Uniform.sample(Weight::new(100), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(7), sample(7));
    }

    #[test]
    fn proportional_clamps() {
        let mut rng = StdRng::seed_from_u64(0);
        let half = DelayModel::Proportional { num: 1, den: 2 };
        assert_eq!(half.sample(Weight::new(8), &mut rng), 4);
        assert_eq!(half.sample(Weight::new(1), &mut rng), 1); // floor clamp
        let over = DelayModel::Proportional { num: 3, den: 2 };
        assert_eq!(over.sample(Weight::new(8), &mut rng), 8); // ceiling clamp
    }

    #[test]
    fn eager_is_one() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(DelayModel::Eager.sample(Weight::new(50), &mut rng), 1);
    }

    fn info(index: u64, w: u64) -> MsgInfo {
        MsgInfo {
            index,
            edge: EdgeId::new(0),
            dir: 0,
            weight: Weight::new(w),
            from: NodeId::new(0),
            to: NodeId::new(1),
            sent: SimTime::ZERO,
        }
    }

    #[test]
    fn model_oracle_matches_direct_sampling() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut oracle = ModelOracle::new(DelayModel::Uniform, 9);
        for i in 0..50 {
            let w = 1 + i % 13;
            assert_eq!(
                oracle.delay(&info(i, w)),
                DelayModel::Uniform.sample(Weight::new(w), &mut rng)
            );
        }
    }
}
