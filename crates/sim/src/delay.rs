//! Edge delay models and the dispatch-time link oracle.
//!
//! The paper's time complexity is defined against an adversary that may
//! delay each message on edge `e` by anything in `[0, w(e)]`. The
//! simulator realizes a spectrum of adversaries, from the fixed per-edge
//! policies of [`DelayModel`] up to fully general per-message
//! [`LinkOracle`]s, which additionally decide *whether* a message
//! arrives at all ([`LinkDecision::Drop`]) and whether a vertex crashes
//! ([`LinkOracle::crash_at`]). The `csp-adversary` crate builds schedule
//! search, record/replay and counterexample shrinking on top of the
//! oracle hook.
//!
//! **Quantization deviation (stated here, once).** Delays are quantized
//! to at least one tick so that every run has finitely many events per
//! time unit; this shifts the adversary's range from the paper's
//! `[0, w(e)]` to `[1, w(e)]`, which changes no asymptotic statement
//! (all weights are ≥ 1). The runtime enforces the range by clamping
//! every oracle decision into `[1, w(e)]`. This is the one in-code home
//! of the deviation; the corresponding row of DESIGN.md's
//! implementation-deviation table links back here so the two cannot
//! drift.

use crate::time::SimTime;
use csp_graph::{EdgeId, NodeId, Weight};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How message delays are chosen.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DelayModel {
    /// Every message takes exactly `w(e)` — the worst-case adversary, and
    /// the model under which the paper's time bounds are stated.
    #[default]
    WorstCase,
    /// Uniformly random in `[1, w(e)]`, drawn from the simulator's seeded
    /// generator.
    Uniform,
    /// Every message takes exactly `max(1, w(e)·num/den)` — a "partially
    /// loaded" network.
    Proportional {
        /// Numerator of the load fraction.
        num: u64,
        /// Denominator of the load fraction.
        den: u64,
    },
    /// Every message takes exactly 1 tick regardless of weight — the
    /// most favorable schedule (weights then act only as *costs*).
    Eager,
}

impl DelayModel {
    /// Samples the delay for one message on an edge of weight `w`.
    pub fn sample(self, w: Weight, rng: &mut StdRng) -> u64 {
        match self {
            DelayModel::WorstCase => w.get(),
            DelayModel::Uniform => rng.random_range(1..=w.get()),
            DelayModel::Proportional { num, den } => {
                assert!(den > 0, "proportional delay denominator must be nonzero");
                (w.get().saturating_mul(num) / den).clamp(1, w.get())
            }
            DelayModel::Eager => 1,
        }
    }
}

/// Everything known about one message at the moment its delay is decided
/// (dispatch time), handed to a [`DelayOracle`].
///
/// `index` is the global dispatch index: the i-th metered send of the run
/// has `index == i`. Runs are deterministic given an oracle, so the index
/// names the same message across a record/replay pair — the property the
/// `csp-adversary` schedule format relies on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MsgInfo {
    /// Global dispatch index of this message (0-based send order).
    pub index: u64,
    /// The edge the message crosses.
    pub edge: EdgeId,
    /// Direction bit: `0` when the sender is the edge's `u` endpoint,
    /// `1` otherwise — the same encoding as the runtime's FIFO channels.
    pub dir: u8,
    /// Weight of the edge (the adversary may pick any delay in
    /// `[1, w]`).
    pub weight: Weight,
    /// Sending vertex.
    pub from: NodeId,
    /// Receiving vertex.
    pub to: NodeId,
    /// Simulated time at which the message is sent.
    pub sent: SimTime,
}

/// The legacy delay-only adversary interface.
///
/// **Deprecated name.** `DelayOracle` is superseded by [`LinkOracle`],
/// which subsumes it (every `DelayOracle` is a `LinkOracle` through a
/// blanket impl that always delivers). The trait is kept for one release
/// so downstream delay-only oracles keep compiling; new code should
/// implement [`LinkOracle`] directly. It will be removed in the release
/// after next.
///
/// Oracles are stateful (`&mut self`): recording, replaying and
/// search-strategy oracles all need memory.
pub trait DelayOracle {
    /// Returns the delay, in ticks, of the message described by `msg`.
    ///
    /// Values outside `[1, w(e)]` are clamped by the runtime, so `0`
    /// means "as fast as the model allows" and `u64::MAX` means "as slow
    /// as the adversary may be".
    fn delay(&mut self, msg: &MsgInfo) -> u64;
}

/// A link adversary's verdict on one dispatched message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkDecision {
    /// Deliver the message after `delay` ticks. The runtime clamps the
    /// delay into `[1, w(e)]` (see the [module docs](self) for why the
    /// floor is 1).
    Deliver {
        /// Requested delay in ticks, clamped into `[1, w(e)]`.
        delay: u64,
    },
    /// Lose the message. The send is still metered (the sender paid
    /// `w(e)` the moment it transmitted) and still consumes a dispatch
    /// index, but nothing is enqueued and the channel's FIFO floor does
    /// not move.
    Drop,
}

/// Decides each message's fate at dispatch time — the simulator's
/// adversary interface.
///
/// The oracle sees the full dispatch context ([`MsgInfo`]) and returns a
/// [`LinkDecision`]: deliver after some delay, or drop. Delivered delays
/// are clamped into `[1, w(e)]`, and per-directed-edge FIFO order is
/// still enforced afterwards, so an oracle can never reorder a channel —
/// only stretch, squeeze or puncture it. The optional [`crash_at`]
/// hook additionally fails whole vertices at chosen times.
///
/// Every [`DelayOracle`] is a `LinkOracle` through a blanket impl that
/// always delivers, so delay-only adversaries (the common case) need not
/// mention drops at all. The fixed [`DelayModel`] policies are
/// re-expressed as the stateless-per-message [`ModelOracle`].
///
/// [`crash_at`]: LinkOracle::crash_at
pub trait LinkOracle {
    /// Returns the fate of the message described by `msg`.
    fn decide(&mut self, msg: &MsgInfo) -> LinkDecision;

    /// Crash time of `node`, if the adversary fails it.
    ///
    /// Queried once per vertex when a run starts (before any handler
    /// executes). From the returned time onward the vertex is dead: its
    /// pending and future deliveries and timer fires are silently
    /// consumed, and it executes no handlers. A crash at time 0 even
    /// suppresses `on_start`. Senders still pay for messages sent *to* a
    /// crashed vertex — the loss is discovered, not announced.
    ///
    /// The default adversary crashes nobody.
    fn crash_at(&mut self, node: NodeId) -> Option<SimTime> {
        let _ = node;
        None
    }

    /// The full *churn plan* of `node`: a strictly increasing sequence
    /// of toggle times, alternating crash, rejoin, crash, … (so even
    /// positions are crashes and odd positions are rejoins).
    ///
    /// Queried once per vertex when a run starts, instead of
    /// [`crash_at`](LinkOracle::crash_at) — the default derives a
    /// crash-stop plan from `crash_at`, so every existing oracle keeps
    /// its exact behavior (including its query sequence). A rejoined
    /// vertex restarts with **fresh protocol state** (its `on_start`
    /// runs again at the rejoin time); timers armed by the previous
    /// incarnation are silently consumed as dead events, while
    /// in-flight messages that arrive at or after the rejoin are
    /// delivered to the fresh state.
    fn churn_plan(&mut self, node: NodeId) -> Vec<SimTime> {
        self.crash_at(node).into_iter().collect()
    }

    /// Mid-run edge-weight revisions: `(edge, time, new weight)` drift
    /// events. Queried once when a run starts, after the per-vertex
    /// churn plans.
    ///
    /// A revision takes effect for every event processed at or after
    /// its time: subsequent delays on the edge are clamped into the new
    /// `[1, w]`, sends are metered at the new weight, and protocols
    /// observe it through
    /// [`Context::weight_of`](crate::Context::weight_of). The default
    /// adversary never drifts a weight.
    fn drift_plan(&mut self) -> Vec<(EdgeId, SimTime, Weight)> {
        Vec::new()
    }

    /// Observes the *effective arrival time* of a delivered message,
    /// immediately after the runtime has clamped the decided delay into
    /// `[1, w(e)]` and applied the channel's FIFO floor.
    ///
    /// This is dispatch-point race metadata: `arrival` is exactly when
    /// the message will be handed to its receiver, so an observing
    /// oracle sees the full `(MsgInfo, arrival)` pair for every
    /// delivery of the run — what `csp-adversary`'s trace layer needs
    /// to compute happens-before and dependent races without guessing
    /// at floor interactions. Both in-memory queue cores (bucket and
    /// heap) dispatch through the same code path, so the hook fires
    /// identically under either.
    ///
    /// Purely observational: the runtime ignores anything this does,
    /// dropped messages are never reported (they have no arrival), and
    /// the default does nothing — committed-schedule semantics are
    /// unchanged.
    fn observe_arrival(&mut self, msg: &MsgInfo, arrival: SimTime) {
        let _ = (msg, arrival);
    }
}

/// Every delay-only oracle is a link oracle that always delivers.
///
/// This is the one-release compatibility shim for the [`DelayOracle`] →
/// [`LinkOracle`] redesign: downstream `DelayOracle` impls keep working
/// everywhere a `LinkOracle` is expected.
impl<T: DelayOracle + ?Sized> LinkOracle for T {
    fn decide(&mut self, msg: &MsgInfo) -> LinkDecision {
        LinkDecision::Deliver {
            delay: self.delay(msg),
        }
    }
}

/// A [`DelayModel`] plus its seeded generator, as a [`LinkOracle`] that
/// always delivers.
///
/// [`Simulator::run`](crate::Simulator::run) is defined as
/// `run_with_oracle` over a `ModelOracle`, so a model-driven run and the
/// equivalent oracle-driven run are bit-identical by construction
/// (pinned by the `flat_core_differential` suite).
#[derive(Clone, Debug)]
pub struct ModelOracle {
    model: DelayModel,
    rng: StdRng,
}

impl ModelOracle {
    /// Wraps `model` with a generator seeded from `seed` — the same
    /// construction [`Simulator::run`](crate::Simulator::run) uses.
    pub fn new(model: DelayModel, seed: u64) -> Self {
        ModelOracle {
            model,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DelayOracle for ModelOracle {
    fn delay(&mut self, msg: &MsgInfo) -> u64 {
        self.model.sample(msg.weight, &mut self.rng)
    }
}

impl<O: DelayOracle + ?Sized> DelayOracle for &mut O {
    fn delay(&mut self, msg: &MsgInfo) -> u64 {
        (**self).delay(msg)
    }
}

/// A [`DelayModel`] plus seeded Bernoulli message loss, as a
/// [`LinkOracle`].
///
/// Each message is dropped with probability `drop_rate`, except that a
/// per-directed-channel *drop budget* bounds consecutive losses: after
/// `budget` drops on a channel, the next message on it is
/// force-delivered (which resets the channel's budget). The budget is
/// what makes retransmission over this oracle *provably* live rather
/// than probabilistically live — a sender whose retry limit exceeds the
/// budget is guaranteed delivery, so tests can assert termination
/// instead of hoping for it.
#[derive(Clone, Debug)]
pub struct DropOracle {
    model: DelayModel,
    rng: StdRng,
    drop_rate: f64,
    budget: u32,
    /// Consecutive drops so far per directed channel `2·edge + dir`.
    streaks: std::collections::HashMap<u64, u32>,
}

impl DropOracle {
    /// A `model`-delayed oracle dropping each message with probability
    /// `drop_rate` (must be in `[0, 1)`), at most `budget` times in a
    /// row per directed channel.
    pub fn new(model: DelayModel, seed: u64, drop_rate: f64, budget: u32) -> Self {
        assert!(
            (0.0..1.0).contains(&drop_rate),
            "drop_rate must be in [0, 1)"
        );
        DropOracle {
            model,
            rng: StdRng::seed_from_u64(seed),
            drop_rate,
            budget,
            streaks: std::collections::HashMap::new(),
        }
    }
}

impl LinkOracle for DropOracle {
    fn decide(&mut self, msg: &MsgInfo) -> LinkDecision {
        let chan = 2 * msg.edge.index() as u64 + u64::from(msg.dir);
        let streak = self.streaks.entry(chan).or_insert(0);
        if *streak < self.budget && self.rng.random_bool(self.drop_rate) {
            *streak += 1;
            return LinkDecision::Drop;
        }
        *streak = 0;
        LinkDecision::Deliver {
            delay: self.model.sample(msg.weight, &mut self.rng),
        }
    }
}

/// An inner [`LinkOracle`] plus a fixed vertex-crash plan.
///
/// Message fates are delegated to the inner oracle untouched; crash
/// times come from the plan. This is the composable way to add crashes
/// to any existing adversary — e.g. `CrashOracle` over a [`DropOracle`]
/// exercises the full drop-and-crash fault model the self-healing
/// protocols in `csp-algo` are written against.
#[derive(Clone, Debug)]
pub struct CrashOracle<O> {
    inner: O,
    crashes: Vec<(NodeId, SimTime)>,
}

impl<O: LinkOracle> CrashOracle<O> {
    /// Wraps `inner` with the given `(vertex, crash time)` plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan crashes the same vertex twice.
    pub fn new(inner: O, crashes: Vec<(NodeId, SimTime)>) -> Self {
        for (i, &(v, _)) in crashes.iter().enumerate() {
            assert!(
                crashes[..i].iter().all(|&(u, _)| u != v),
                "vertex {v} crashed twice"
            );
        }
        CrashOracle { inner, crashes }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: LinkOracle> LinkOracle for CrashOracle<O> {
    fn decide(&mut self, msg: &MsgInfo) -> LinkDecision {
        self.inner.decide(msg)
    }

    fn crash_at(&mut self, node: NodeId) -> Option<SimTime> {
        self.crashes
            .iter()
            .find(|&&(v, _)| v == node)
            .map(|&(_, t)| t)
    }

    fn drift_plan(&mut self) -> Vec<(EdgeId, SimTime, Weight)> {
        self.inner.drift_plan()
    }

    fn observe_arrival(&mut self, msg: &MsgInfo, arrival: SimTime) {
        self.inner.observe_arrival(msg, arrival);
    }
}

/// An inner [`LinkOracle`] plus a full churn plan: per-vertex
/// crash/rejoin toggle sequences and mid-run edge-weight drift.
///
/// The crash-stop [`CrashOracle`] generalized: each vertex may crash,
/// recover (restarting with fresh protocol state) and crash again, per
/// its [`churn plan`](LinkOracle::churn_plan), and edge weights may be
/// revised mid-run per the [`drift plan`](LinkOracle::drift_plan).
/// Message fates are delegated to the inner oracle untouched.
#[derive(Clone, Debug)]
pub struct ChurnOracle<O> {
    inner: O,
    /// Validated per-vertex toggle plans, looked up linearly.
    churn: Vec<(NodeId, Vec<SimTime>)>,
    drifts: Vec<(EdgeId, SimTime, Weight)>,
}

impl<O: LinkOracle> ChurnOracle<O> {
    /// Wraps `inner` with per-vertex toggle plans (strictly increasing
    /// times, alternating crash / rejoin) and a weight-drift plan.
    ///
    /// # Panics
    ///
    /// Panics if a vertex appears twice or a plan's times are not
    /// strictly increasing.
    pub fn new(
        inner: O,
        churn: Vec<(NodeId, Vec<SimTime>)>,
        drifts: Vec<(EdgeId, SimTime, Weight)>,
    ) -> Self {
        for (i, (v, plan)) in churn.iter().enumerate() {
            assert!(
                churn[..i].iter().all(|(u, _)| u != v),
                "vertex {v} has two churn plans"
            );
            assert!(
                plan.windows(2).all(|w| w[0] < w[1]),
                "churn plan for {v} must be strictly increasing"
            );
        }
        ChurnOracle {
            inner,
            churn,
            drifts,
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: LinkOracle> LinkOracle for ChurnOracle<O> {
    fn decide(&mut self, msg: &MsgInfo) -> LinkDecision {
        self.inner.decide(msg)
    }

    fn crash_at(&mut self, node: NodeId) -> Option<SimTime> {
        // First toggle of the plan, for consumers that only understand
        // crash-stop (e.g. the baseline reference simulator's guard).
        self.churn
            .iter()
            .find(|(v, _)| *v == node)
            .and_then(|(_, plan)| plan.first().copied())
    }

    fn churn_plan(&mut self, node: NodeId) -> Vec<SimTime> {
        self.churn
            .iter()
            .find(|(v, _)| *v == node)
            .map(|(_, plan)| plan.clone())
            .unwrap_or_default()
    }

    fn drift_plan(&mut self) -> Vec<(EdgeId, SimTime, Weight)> {
        self.drifts.clone()
    }

    fn observe_arrival(&mut self, msg: &MsgInfo, arrival: SimTime) {
        self.inner.observe_arrival(msg, arrival);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn worst_case_is_weight() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(DelayModel::WorstCase.sample(Weight::new(7), &mut rng), 7);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let d = DelayModel::Uniform.sample(Weight::new(9), &mut rng);
            assert!((1..=9).contains(&d));
        }
    }

    #[test]
    fn uniform_is_seeded_deterministic() {
        let sample = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..10)
                .map(|_| DelayModel::Uniform.sample(Weight::new(100), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(7), sample(7));
    }

    #[test]
    fn proportional_clamps() {
        let mut rng = StdRng::seed_from_u64(0);
        let half = DelayModel::Proportional { num: 1, den: 2 };
        assert_eq!(half.sample(Weight::new(8), &mut rng), 4);
        assert_eq!(half.sample(Weight::new(1), &mut rng), 1); // floor clamp
        let over = DelayModel::Proportional { num: 3, den: 2 };
        assert_eq!(over.sample(Weight::new(8), &mut rng), 8); // ceiling clamp
    }

    #[test]
    fn eager_is_one() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(DelayModel::Eager.sample(Weight::new(50), &mut rng), 1);
    }

    fn info(index: u64, w: u64) -> MsgInfo {
        MsgInfo {
            index,
            edge: EdgeId::new(0),
            dir: 0,
            weight: Weight::new(w),
            from: NodeId::new(0),
            to: NodeId::new(1),
            sent: SimTime::ZERO,
        }
    }

    #[test]
    fn model_oracle_matches_direct_sampling() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut oracle = ModelOracle::new(DelayModel::Uniform, 9);
        for i in 0..50 {
            let w = 1 + i % 13;
            assert_eq!(
                oracle.delay(&info(i, w)),
                DelayModel::Uniform.sample(Weight::new(w), &mut rng)
            );
        }
    }

    #[test]
    fn delay_oracles_are_link_oracles_that_always_deliver() {
        // The compatibility shim: `ModelOracle` only implements
        // `DelayOracle`, yet answers `decide` with the sampled delay.
        let mut direct = ModelOracle::new(DelayModel::Uniform, 3);
        let mut shimmed = ModelOracle::new(DelayModel::Uniform, 3);
        for i in 0..50 {
            let w = 1 + i % 7;
            assert_eq!(
                shimmed.decide(&info(i, w)),
                LinkDecision::Deliver {
                    delay: direct.delay(&info(i, w))
                }
            );
        }
        assert_eq!(LinkOracle::crash_at(&mut shimmed, NodeId::new(0)), None);
    }

    #[test]
    fn drop_oracle_respects_its_budget() {
        // At drop_rate ~1 every message the budget allows is dropped, so
        // the pattern per channel is exactly budget drops, one delivery.
        let mut oracle = DropOracle::new(DelayModel::WorstCase, 5, 0.999_999, 2);
        let fates: Vec<bool> = (0..9)
            .map(|i| oracle.decide(&info(i, 4)) == LinkDecision::Drop)
            .collect();
        assert_eq!(
            fates,
            [true, true, false, true, true, false, true, true, false]
        );
    }

    #[test]
    fn drop_oracle_budget_is_per_channel() {
        let mut oracle = DropOracle::new(DelayModel::WorstCase, 5, 0.999_999, 1);
        // Alternate two directed channels: each gets its own streak.
        let chan = |idx: u64, dir: u8| MsgInfo {
            dir,
            ..info(idx, 4)
        };
        assert_eq!(oracle.decide(&chan(0, 0)), LinkDecision::Drop);
        assert_eq!(oracle.decide(&chan(1, 1)), LinkDecision::Drop);
        assert_ne!(oracle.decide(&chan(2, 0)), LinkDecision::Drop);
        assert_ne!(oracle.decide(&chan(3, 1)), LinkDecision::Drop);
    }

    #[test]
    fn crash_oracle_delegates_fates_and_serves_the_plan() {
        let mut bare = ModelOracle::new(DelayModel::Uniform, 4);
        let mut wrapped = CrashOracle::new(
            ModelOracle::new(DelayModel::Uniform, 4),
            vec![(NodeId::new(2), SimTime::new(9))],
        );
        for i in 0..20 {
            assert_eq!(wrapped.decide(&info(i, 5)), bare.decide(&info(i, 5)));
        }
        assert_eq!(wrapped.crash_at(NodeId::new(2)), Some(SimTime::new(9)));
        assert_eq!(wrapped.crash_at(NodeId::new(0)), None);
    }

    #[test]
    #[should_panic(expected = "crashed twice")]
    fn crash_oracle_rejects_duplicate_victims() {
        let plan = vec![
            (NodeId::new(1), SimTime::new(3)),
            (NodeId::new(1), SimTime::new(5)),
        ];
        let _ = CrashOracle::new(ModelOracle::new(DelayModel::WorstCase, 0), plan);
    }

    #[test]
    fn default_churn_plan_derives_from_crash_at() {
        let mut crash = CrashOracle::new(
            ModelOracle::new(DelayModel::WorstCase, 0),
            vec![(NodeId::new(3), SimTime::new(7))],
        );
        assert_eq!(crash.churn_plan(NodeId::new(3)), vec![SimTime::new(7)]);
        assert_eq!(crash.churn_plan(NodeId::new(0)), Vec::<SimTime>::new());
        assert!(crash.drift_plan().is_empty());
        let mut plain = ModelOracle::new(DelayModel::WorstCase, 0);
        assert!(LinkOracle::churn_plan(&mut plain, NodeId::new(0)).is_empty());
    }

    #[test]
    fn churn_oracle_serves_plans_and_delegates_fates() {
        let mut bare = ModelOracle::new(DelayModel::Uniform, 4);
        let mut wrapped = ChurnOracle::new(
            ModelOracle::new(DelayModel::Uniform, 4),
            vec![(
                NodeId::new(2),
                vec![SimTime::new(5), SimTime::new(9), SimTime::new(20)],
            )],
            vec![(EdgeId::new(1), SimTime::new(6), Weight::new(11))],
        );
        for i in 0..20 {
            assert_eq!(wrapped.decide(&info(i, 5)), bare.decide(&info(i, 5)));
        }
        assert_eq!(
            wrapped.churn_plan(NodeId::new(2)),
            vec![SimTime::new(5), SimTime::new(9), SimTime::new(20)]
        );
        assert_eq!(wrapped.crash_at(NodeId::new(2)), Some(SimTime::new(5)));
        assert!(wrapped.churn_plan(NodeId::new(0)).is_empty());
        assert_eq!(
            wrapped.drift_plan(),
            vec![(EdgeId::new(1), SimTime::new(6), Weight::new(11))]
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn churn_oracle_rejects_unordered_plans() {
        let _ = ChurnOracle::new(
            ModelOracle::new(DelayModel::WorstCase, 0),
            vec![(NodeId::new(1), vec![SimTime::new(9), SimTime::new(3)])],
            vec![],
        );
    }

    #[test]
    #[should_panic(expected = "two churn plans")]
    fn churn_oracle_rejects_duplicate_vertices() {
        let _ = ChurnOracle::new(
            ModelOracle::new(DelayModel::WorstCase, 0),
            vec![
                (NodeId::new(1), vec![SimTime::new(3)]),
                (NodeId::new(1), vec![SimTime::new(5)]),
            ],
            vec![],
        );
    }

    #[test]
    fn drop_oracle_at_rate_zero_never_drops() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut oracle = DropOracle::new(DelayModel::Uniform, 11, 0.0, 8);
        for i in 0..50 {
            let w = 1 + i % 13;
            // Consumes one Bernoulli draw then one delay draw, so the
            // stream differs from ModelOracle's — compare against a
            // lock-step twin instead.
            let _ = rng.random_bool(0.0);
            assert_eq!(
                oracle.decide(&info(i, w)),
                LinkDecision::Deliver {
                    delay: DelayModel::Uniform.sample(Weight::new(w), &mut rng)
                }
            );
        }
    }
}
