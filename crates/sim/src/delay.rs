//! Edge delay models.
//!
//! The paper's time complexity is defined against an adversary that may
//! delay each message on edge `e` by anything in `[0, w(e)]`. The
//! simulator realizes a spectrum of adversaries. Delays are quantized to
//! at least one tick so that every run has finitely many events per time
//! unit; this shifts the adversary's range to `[1, w(e)]`, which changes
//! no asymptotic statement (all weights are ≥ 1).

use csp_graph::Weight;
use rand::rngs::StdRng;
use rand::RngExt;

/// How message delays are chosen.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DelayModel {
    /// Every message takes exactly `w(e)` — the worst-case adversary, and
    /// the model under which the paper's time bounds are stated.
    #[default]
    WorstCase,
    /// Uniformly random in `[1, w(e)]`, drawn from the simulator's seeded
    /// generator.
    Uniform,
    /// Every message takes exactly `max(1, w(e)·num/den)` — a "partially
    /// loaded" network.
    Proportional {
        /// Numerator of the load fraction.
        num: u64,
        /// Denominator of the load fraction.
        den: u64,
    },
    /// Every message takes exactly 1 tick regardless of weight — the
    /// most favorable schedule (weights then act only as *costs*).
    Eager,
}

impl DelayModel {
    /// Samples the delay for one message on an edge of weight `w`.
    pub fn sample(self, w: Weight, rng: &mut StdRng) -> u64 {
        match self {
            DelayModel::WorstCase => w.get(),
            DelayModel::Uniform => rng.random_range(1..=w.get()),
            DelayModel::Proportional { num, den } => {
                assert!(den > 0, "proportional delay denominator must be nonzero");
                (w.get().saturating_mul(num) / den).clamp(1, w.get())
            }
            DelayModel::Eager => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn worst_case_is_weight() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(DelayModel::WorstCase.sample(Weight::new(7), &mut rng), 7);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let d = DelayModel::Uniform.sample(Weight::new(9), &mut rng);
            assert!((1..=9).contains(&d));
        }
    }

    #[test]
    fn uniform_is_seeded_deterministic() {
        let sample = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..10)
                .map(|_| DelayModel::Uniform.sample(Weight::new(100), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(7), sample(7));
    }

    #[test]
    fn proportional_clamps() {
        let mut rng = StdRng::seed_from_u64(0);
        let half = DelayModel::Proportional { num: 1, den: 2 };
        assert_eq!(half.sample(Weight::new(8), &mut rng), 4);
        assert_eq!(half.sample(Weight::new(1), &mut rng), 1); // floor clamp
        let over = DelayModel::Proportional { num: 3, den: 2 };
        assert_eq!(over.sample(Weight::new(8), &mut rng), 8); // ceiling clamp
    }

    #[test]
    fn eager_is_one() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(DelayModel::Eager.sample(Weight::new(50), &mut rng), 1);
    }
}
