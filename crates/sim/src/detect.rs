//! `Detect<P>`: a heartbeat failure detector delivering
//! `peer_suspected` upcalls to crash-aware protocols.
//!
//! The fault adversary ([`LinkOracle::crash_at`](crate::LinkOracle::crash_at))
//! kills vertices silently: a crashed peer simply stops answering, and a
//! protocol that waits for it deadlocks or truncates its output. This
//! module adds the standard remedy — timer-driven neighbor monitoring —
//! in the paper's cost vocabulary:
//!
//! * every vertex sends a heartbeat ([`DetectMsg::Beat`]) to each
//!   neighbor at time zero and then every `period` ticks, `beats` times
//!   in total, metered under [`CostClass::Auxiliary`] (the measurable
//!   weighted price of monitoring);
//! * each neighbor is watched with a per-edge *suspicion timeout*
//!   `θ(e) = (loss_tolerance + 1)·period + w(e) + 1`: any arrival from
//!   the peer (heartbeat or application traffic) pushes its deadline to
//!   `now + θ(e)`, and a deadline that expires raises a suspicion,
//!   delivered to the hosted protocol as
//!   [`FaultAware::on_peer_suspected`]. `θ(e)` is computed from the
//!   *effective* weight ([`Context::weight_of`]) at every arrival, so
//!   mid-run weight drift widens or narrows the timeout from its
//!   instant (the watch's end-of-window instant stays fixed from the
//!   arm-time weight — a window cannot be reopened by a revision).
//!
//! # Suspicion is revocable: rejoin handling
//!
//! A suspected channel is put to rest — its watch timer is cancelled
//! rather than left to fire dead, and subsequent heartbeat rounds skip
//! the peer, so a crashed neighbor stops costing anything. But churn
//! adversaries may *rejoin* a crashed vertex: the restarted incarnation
//! heartbeats afresh, and any arrival from a suspected peer revokes the
//! suspicion — the watch re-arms (inside its original window), one
//! immediate heartbeat is returned to the peer so both directions
//! re-establish liveness, and the hosted protocol hears
//! [`FaultAware::on_peer_restored`].
//!
//! # Accuracy and completeness (in the weighted-delay model)
//!
//! Delays on edge `e` are bounded by `w(e)` and per-channel loss streaks
//! by the adversary's drop budget, so for `loss_tolerance ≥ budget` the
//! detector is **accurate**: a live peer's inter-arrival gap is at most
//! `(loss_tolerance + 1)·period + w(e) − 1 < θ(e)`, so it is never
//! suspected. It is **complete up to a horizon**: the beat window is
//! bounded (`beats` rounds, so runs quiesce), and a crash at time `t` is
//! guaranteed to be suspected — within `θ(e)` of the peer's last sign of
//! life — only when `t ≤ (beats − 1 − loss_tolerance)·period − w(e) + 1`
//! (see [`DetectConfig::detection_horizon`]). Crashes after the horizon
//! may go unnoticed; that is the price of quiescence, stated in
//! DESIGN.md's failure-detector section.
//!
//! Because delays are bounded, suspicion is also *ordered*: every
//! message the crashed peer sent before dying arrives strictly before
//! the suspicion upcall, so a hosted protocol never hears from a peer it
//! was already told is dead (on that same channel; a retransmission
//! layer's give-up may interleave differently — see
//! [`FaultAware::on_channel_failed`]).

use crate::cost::CostClass;
use crate::process::{Context, Process, TimerId};
use crate::time::SimTime;
use csp_graph::{EdgeId, NodeId};

/// A [`Process`] that can react to failure notifications.
///
/// All upcalls default to no-ops, so any protocol can opt in with an
/// empty `impl FaultAware for X {}` and crash-tolerant protocols
/// override what they need. Upcalls run on a full [`Context`]: the
/// handler may send messages and arm timers like any other handler.
pub trait FaultAware: Process {
    /// The channel toward `peer` gave up: a retransmission layer
    /// exhausted its retries ([`Reliable`](crate::Reliable) after
    /// `max_retries` consecutive timeouts). Traffic to `peer` is being
    /// discarded from now on.
    fn on_channel_failed(&mut self, peer: NodeId, ctx: &mut Context<'_, Self::Msg>) {
        let _ = (peer, ctx);
    }

    /// The failure detector suspects `peer` has crashed. The upcall
    /// fires at most once per contiguous down period: a rejoin that
    /// revokes the suspicion (see [`FaultAware::on_peer_restored`])
    /// re-arms it for the peer's next crash.
    fn on_peer_suspected(&mut self, peer: NodeId, ctx: &mut Context<'_, Self::Msg>) {
        let _ = (peer, ctx);
    }

    /// A previously suspected `peer` showed a life sign again: the
    /// churn adversary rejoined it and its restarted incarnation is
    /// heartbeating. The suspicion has already been revoked when this
    /// fires; traffic to `peer` flows again.
    fn on_peer_restored(&mut self, peer: NodeId, ctx: &mut Context<'_, Self::Msg>) {
        let _ = (peer, ctx);
    }
}

/// Wire alphabet of [`Detect<P>`]: heartbeats plus the hosted protocol's
/// own messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DetectMsg<M> {
    /// A heartbeat — pure life sign, metered [`CostClass::Auxiliary`].
    Beat,
    /// A relayed message of the hosted protocol, metered under its own
    /// class.
    App(M),
}

/// Heartbeat and suspicion parameters of [`Detect<P>`].
#[derive(Clone, Copy, Debug)]
pub struct DetectConfig {
    /// Ticks between heartbeat rounds.
    pub period: u64,
    /// Total heartbeat rounds (the first fires at time zero). The beat
    /// window is bounded so monitored runs still quiesce.
    pub beats: u32,
    /// Consecutive per-channel losses the detector tolerates without a
    /// false suspicion. Match it to the drop adversary's streak budget
    /// (e.g. [`DropOracle`](crate::DropOracle)'s `budget`); `0` for
    /// crash-only adversaries.
    pub loss_tolerance: u32,
}

impl DetectConfig {
    /// A config with `period` ticks between `beats` rounds, tolerating
    /// `loss_tolerance` consecutive losses per channel.
    ///
    /// # Panics
    ///
    /// Panics unless `period ≥ 1` and `beats > loss_tolerance` (the
    /// monitoring window must outlast the tolerated loss streak).
    pub fn new(period: u64, beats: u32, loss_tolerance: u32) -> Self {
        assert!(period >= 1, "heartbeat period must be at least one tick");
        assert!(
            beats > loss_tolerance,
            "beat window must exceed the loss tolerance"
        );
        DetectConfig {
            period,
            beats,
            loss_tolerance,
        }
    }

    /// Suspicion timeout for an edge of weight `w`:
    /// `(loss_tolerance + 1)·period + w + 1`, strictly above any live
    /// peer's inter-arrival gap.
    pub fn theta(&self, w: u64) -> u64 {
        (u64::from(self.loss_tolerance) + 1) * self.period + w + 1
    }

    /// Last instant at which a watch on an edge of weight `w` may still
    /// raise a suspicion; later expiries mean the beat window is over
    /// and monitoring stops (a live peer's final heartbeat always pushes
    /// its deadline past this).
    fn watch_end(&self, w: u64) -> u64 {
        u64::from(self.beats - 1 - self.loss_tolerance) * self.period + self.theta(w)
    }

    /// Latest crash time guaranteed to be detected over an edge of
    /// weight `w`: `(beats − 1 − loss_tolerance)·period − w + 1`
    /// (saturating at zero). Crashes at or before the horizon are always
    /// suspected; later ones may slip through the end of the beat
    /// window.
    pub fn detection_horizon(&self, w: u64) -> u64 {
        (u64::from(self.beats - 1 - self.loss_tolerance) * self.period).saturating_sub(w - 1)
    }
}

impl Default for DetectConfig {
    /// Eight rounds, eight ticks apart, tolerating no loss.
    fn default() -> Self {
        DetectConfig::new(8, 8, 0)
    }
}

/// Per-neighbor monitoring state.
#[derive(Clone, Debug)]
struct Watch {
    peer: NodeId,
    /// The monitored channel; `θ(e)` is recomputed from its *effective*
    /// weight at every arrival, so weight drift moves the timeout.
    edge: EdgeId,
    /// Suspicion fires when the clock reaches this without an arrival.
    deadline: SimTime,
    /// Deadlines past this *absolute* instant end monitoring instead of
    /// suspecting: heartbeat schedules are anchored at time zero, so
    /// even a rejoined incarnation (whose watches are armed mid-run)
    /// monitors only for the remainder of the global beat window —
    /// otherwise it would falsely suspect live peers whose bounded beat
    /// rounds simply ran out. Fixed from the arm-time weight; drift
    /// cannot reopen a window.
    end: SimTime,
    /// Outstanding watch timer, if any.
    timer: Option<TimerId>,
    suspected: bool,
}

/// Heartbeat failure detector hosting a crash-aware protocol. See the
/// [module docs](self) for the monitoring protocol and its guarantees.
///
/// `Detect` is a protocol transformer in the same mold as
/// [`Reliable`](crate::Reliable): the hosted protocol runs unchanged,
/// its sends relayed as [`DetectMsg::App`] under their own cost class,
/// while heartbeats ride [`CostClass::Auxiliary`]. Unlike `Reliable`,
/// `Detect` also *forwards the hosted protocol's timers* (via
/// [`Context::derive_with_timers`]), so timer-using protocols — a
/// `Reliable` layer included — can be monitored:
/// `Detect<Reliable<P>>` is the full drop-and-crash-tolerant stack.
#[derive(Clone, Debug)]
pub struct Detect<P: FaultAware> {
    inner: P,
    cfg: DetectConfig,
    /// Heartbeat rounds already sent.
    beats_sent: u32,
    beat_timer: Option<TimerId>,
    watches: Vec<Watch>,
    /// Next timer id the hosted protocol will be handed.
    inner_timer_seq: u64,
    /// Live `(inner id, outer id)` timer pairs, unordered.
    timer_map: Vec<(u64, TimerId)>,
}

impl<P: FaultAware> Detect<P> {
    /// Monitors `inner`'s neighborhood with `cfg`'s heartbeat schedule.
    pub fn new(inner: P, cfg: DetectConfig) -> Self {
        Detect {
            inner,
            cfg,
            beats_sent: 0,
            beat_timer: None,
            watches: Vec::new(),
            inner_timer_seq: 0,
            timer_map: Vec::new(),
        }
    }

    /// The hosted protocol instance.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps into the hosted protocol instance.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Whether this vertex's detector currently suspects `peer`.
    /// Suspicion is revocable: any later life sign from the peer (a
    /// rejoined incarnation's heartbeat) clears it again.
    pub fn suspects(&self, peer: NodeId) -> bool {
        self.watches.iter().any(|w| w.peer == peer && w.suspected)
    }

    /// The currently suspected neighbors, in neighbor order.
    pub fn suspected(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.watches.iter().filter(|w| w.suspected).map(|w| w.peer)
    }

    /// Sends one heartbeat round and re-arms the beat timer while rounds
    /// remain. Suspected peers are skipped — a confirmed-dead channel
    /// stops paying weighted heartbeat cost, and the dead vertex stops
    /// receiving deliveries that would churn the queue as dead events
    /// for the rest of the run. (A rejoined peer is un-suspected by its
    /// own fresh heartbeats and rejoins the round schedule.)
    fn beat(&mut self, ctx: &mut Context<'_, DetectMsg<P::Msg>>) {
        let g = ctx.graph();
        let me = ctx.self_id();
        for (peer, _, _) in g.neighbors(me) {
            if self.suspects(peer) {
                continue;
            }
            ctx.send_class(peer, DetectMsg::Beat, CostClass::Auxiliary);
        }
        self.beats_sent += 1;
        self.beat_timer = if self.beats_sent < self.cfg.beats {
            Some(ctx.set_timer(self.cfg.period))
        } else {
            None
        };
    }

    /// Runs a hosted handler on a derived context, then relays its sends
    /// and forwards its timer ops (mapping inner timer ids onto real
    /// ones).
    fn host<F>(&mut self, ctx: &mut Context<'_, DetectMsg<P::Msg>>, f: F)
    where
        F: FnOnce(&mut P, &mut Context<'_, P::Msg>),
    {
        let mut inner_ctx = ctx.derive_with_timers::<P::Msg>(self.inner_timer_seq);
        f(&mut self.inner, &mut inner_ctx);
        let (delays, cancels) = inner_ctx.take_timer_ops();
        let out = inner_ctx.take_outbox();
        for (to, msg, class) in out {
            ctx.send_class(to, DetectMsg::App(msg), class);
        }
        // Cancels of already-mapped timers go through; cancels of ids
        // armed in this same handler suppress the arm below — the same
        // net effect the runtime's own cancel-before-arm draining has.
        let base = self.inner_timer_seq;
        let mut cancelled_new: Vec<u64> = Vec::new();
        for id in cancels {
            if id >= base {
                cancelled_new.push(id);
            } else if let Some(pos) = self.timer_map.iter().position(|(inner, _)| *inner == id) {
                let (_, outer) = self.timer_map.swap_remove(pos);
                ctx.cancel_timer(outer);
            }
        }
        for (k, delay) in delays.into_iter().enumerate() {
            let inner_id = base + k as u64;
            self.inner_timer_seq += 1;
            if cancelled_new.contains(&inner_id) {
                continue;
            }
            let outer = ctx.set_timer(delay);
            self.timer_map.push((inner_id, outer));
        }
    }

    /// Records a life sign from `from` at the current time, pushing its
    /// watch deadline by the live `θ(e)` (effective weight, so drift
    /// moves the timeout from its instant).
    ///
    /// An arrival from a *suspected* peer proves it rejoined: the
    /// suspicion is revoked, the watch re-armed (inside its original
    /// window), one heartbeat is returned immediately so the restarted
    /// incarnation sees us alive in turn, and the hosted protocol hears
    /// [`FaultAware::on_peer_restored`].
    fn refresh(&mut self, from: NodeId, ctx: &mut Context<'_, DetectMsg<P::Msg>>) {
        let now = ctx.time();
        let Some(i) = self.watches.iter().position(|w| w.peer == from) else {
            return;
        };
        let theta = self.cfg.theta(ctx.weight_of(self.watches[i].edge).get());
        self.watches[i].deadline = now + theta;
        if !self.watches[i].suspected {
            return;
        }
        self.watches[i].suspected = false;
        if self.watches[i].deadline <= self.watches[i].end && self.watches[i].timer.is_none() {
            let t = ctx.set_timer(theta);
            self.watches[i].timer = Some(t);
        }
        ctx.send_class(from, DetectMsg::Beat, CostClass::Auxiliary);
        self.host(ctx, |p, c| p.on_peer_restored(from, c));
    }
}

impl<P: FaultAware> Process for Detect<P> {
    type Msg = DetectMsg<P::Msg>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        // Arm one watch per neighbor before anything is sent, so even a
        // peer that crashes at time zero is eventually suspected. A
        // rejoined incarnation runs this mid-run: deadlines are
        // anchored at `now` *plus one edge traversal of grace* — peers
        // that suspected us only resume beating once our own restart
        // beat has crossed the edge, so the first life sign can lag a
        // full round trip behind a steady-state gap. The window end
        // stays the absolute instant the global beat schedule runs out
        // (see [`Watch`]).
        let g = ctx.graph();
        let me = ctx.self_id();
        let now = ctx.time();
        for (peer, eid, _) in g.neighbors(me) {
            let w = ctx.weight_of(eid).get();
            let theta = self.cfg.theta(w);
            let grace = if now == SimTime::ZERO { 0 } else { w };
            let timer = ctx.set_timer(grace + theta);
            self.watches.push(Watch {
                peer,
                edge: eid,
                deadline: now + grace + theta,
                end: SimTime::new(self.cfg.watch_end(w)),
                timer: Some(timer),
                suspected: false,
            });
        }
        self.beat(ctx);
        self.host(ctx, |p, c| p.on_start(c));
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        self.refresh(from, ctx);
        if let DetectMsg::App(msg) = msg {
            self.host(ctx, |p, c| p.on_message(from, msg, c));
        }
    }

    fn on_timer(&mut self, id: TimerId, ctx: &mut Context<'_, Self::Msg>) {
        if self.beat_timer == Some(id) {
            self.beat_timer = None;
            self.beat(ctx);
            return;
        }
        if let Some(i) = self.watches.iter().position(|w| w.timer == Some(id)) {
            self.watches[i].timer = None;
            if self.watches[i].suspected {
                return;
            }
            let now = ctx.time();
            if self.watches[i].deadline > self.watches[i].end {
                // The beat window is over: a live peer's last heartbeat
                // always lands its deadline here. Stop monitoring.
                return;
            }
            if now >= self.watches[i].deadline {
                self.watches[i].suspected = true;
                // Put the channel fully to rest: cancel any outstanding
                // watch timer instead of leaving it to fire dead (the
                // restore path can re-arm one mid-window), and `beat`
                // skips suspected peers from the next round on.
                if let Some(t) = self.watches[i].timer.take() {
                    ctx.cancel_timer(t);
                }
                let peer = self.watches[i].peer;
                self.host(ctx, |p, c| p.on_peer_suspected(peer, c));
                return;
            }
            // An arrival moved the deadline since this timer was armed:
            // chase it.
            let remaining = self.watches[i].deadline.get() - now.get();
            let t = ctx.set_timer(remaining);
            self.watches[i].timer = Some(t);
            return;
        }
        if let Some(pos) = self.timer_map.iter().position(|(_, outer)| *outer == id) {
            let (inner_id, _) = self.timer_map.swap_remove(pos);
            self.host(ctx, |p, c| p.on_timer(TimerId(inner_id), c));
        }
    }
}

impl<P: FaultAware> FaultAware for Detect<P> {
    fn on_channel_failed(&mut self, peer: NodeId, ctx: &mut Context<'_, Self::Msg>) {
        self.host(ctx, |p, c| p.on_channel_failed(peer, c));
    }

    fn on_peer_suspected(&mut self, peer: NodeId, ctx: &mut Context<'_, Self::Msg>) {
        self.host(ctx, |p, c| p.on_peer_suspected(peer, c));
    }

    fn on_peer_restored(&mut self, peer: NodeId, ctx: &mut Context<'_, Self::Msg>) {
        self.host(ctx, |p, c| p.on_peer_restored(peer, c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{ChurnOracle, DelayModel, DropOracle, LinkDecision, LinkOracle, MsgInfo};
    use crate::reliable::Reliable;
    use crate::runtime::{CoreKind, Simulator};
    use csp_graph::{generators, Weight, WeightedGraph};

    /// Flood that also records which peers it was told are dead or
    /// restored.
    #[derive(Clone, Debug)]
    struct Flood {
        initiator: bool,
        reached: bool,
        dead_peers: Vec<NodeId>,
        restored_peers: Vec<NodeId>,
    }

    impl Flood {
        fn new(initiator: bool) -> Self {
            Flood {
                initiator,
                reached: false,
                dead_peers: Vec::new(),
                restored_peers: Vec::new(),
            }
        }
    }

    impl Process for Flood {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            if self.initiator {
                self.reached = true;
                ctx.send_all(());
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: (), ctx: &mut Context<'_, ()>) {
            if !self.reached {
                self.reached = true;
                ctx.send_all(());
            }
        }
    }

    impl FaultAware for Flood {
        fn on_peer_suspected(&mut self, peer: NodeId, _ctx: &mut Context<'_, ()>) {
            self.dead_peers.push(peer);
        }
        fn on_peer_restored(&mut self, peer: NodeId, _ctx: &mut Context<'_, ()>) {
            self.restored_peers.push(peer);
        }
    }

    fn cfg() -> DetectConfig {
        DetectConfig::new(4, 12, 0)
    }

    fn make(v: NodeId, _: &WeightedGraph) -> Detect<Flood> {
        Detect::new(Flood::new(v == NodeId::new(0)), cfg())
    }

    /// Delivers instantly; crashes one vertex at a chosen time.
    struct CrashAt(NodeId, SimTime);
    impl LinkOracle for CrashAt {
        fn decide(&mut self, msg: &MsgInfo) -> LinkDecision {
            LinkDecision::Deliver {
                delay: msg.weight.get(),
            }
        }
        fn crash_at(&mut self, node: NodeId) -> Option<SimTime> {
            (node == self.0).then_some(self.1)
        }
    }

    #[test]
    fn accurate_without_faults() {
        let g = generators::connected_gnp(9, 0.4, generators::WeightDist::Uniform(1, 3), 7);
        let run = Simulator::new(&g).run(make).unwrap();
        for s in &run.states {
            assert_eq!(s.suspected().count(), 0, "false suspicion");
            assert!(s.inner().reached);
        }
        // Heartbeats are pure overhead: every vertex sent `beats` rounds
        // to each neighbor, metered Auxiliary.
        let beats: u64 = 2 * g.edge_count() as u64 * u64::from(cfg().beats);
        assert_eq!(run.cost.messages_of(CostClass::Auxiliary), beats);
        assert!(!run.cost.has_faults());
    }

    #[test]
    fn crash_within_horizon_is_suspected_by_every_neighbor() {
        let g = generators::star(5, |_| 2);
        let victim = NodeId::new(0); // the hub: everyone watches it
        let at = SimTime::new(9);
        assert!(at.get() <= cfg().detection_horizon(2));
        let run = Simulator::new(&g)
            .run_with_oracle(&mut CrashAt(victim, at), |v, _| {
                Detect::new(Flood::new(v == NodeId::new(1)), cfg())
            })
            .unwrap();
        for v in g.nodes().filter(|v| *v != victim) {
            assert!(run.states[v.index()].suspects(victim), "{v} missed it");
            assert_eq!(run.states[v.index()].inner().dead_peers, vec![victim]);
            // Nobody suspects a live peer.
            assert_eq!(run.states[v.index()].suspected().count(), 1);
        }
        assert_eq!(run.cost.crashed_nodes, 1);
        assert!(run.cost.dead_events > 0);
    }

    #[test]
    fn crash_past_the_window_goes_unnoticed() {
        let g = generators::path(3, |_| 2);
        let horizon = cfg().detection_horizon(2);
        let run = Simulator::new(&g)
            .run_with_oracle(
                &mut CrashAt(NodeId::new(2), SimTime::new(10 * horizon)),
                make,
            )
            .unwrap();
        // The documented caveat: a post-window crash raises no
        // suspicion anywhere.
        assert!(run.states.iter().all(|s| s.suspected().count() == 0));
    }

    #[test]
    fn loss_tolerance_prevents_false_suspicion_under_drops() {
        let g = generators::connected_gnp(8, 0.4, generators::WeightDist::Uniform(1, 4), 3);
        let cfg = DetectConfig::new(4, 16, 3);
        for seed in 0..4 {
            let mut oracle = DropOracle::new(DelayModel::Uniform, seed, 0.3, 3);
            let run = Simulator::new(&g)
                .run_with_oracle(&mut oracle, |_, _| Detect::new(Flood::new(false), cfg))
                .unwrap();
            for s in &run.states {
                assert_eq!(s.suspected().count(), 0, "false suspicion at seed {seed}");
            }
        }
    }

    #[test]
    fn hosted_timers_are_forwarded() {
        // Detect<Reliable<Flood>>: the Reliable layer only works if its
        // retransmission timers survive the Detect transformer. Drop the
        // initiator's first transmission; recovery proves the timer
        // fired.
        struct DropFirst;
        impl LinkOracle for DropFirst {
            fn decide(&mut self, msg: &MsgInfo) -> LinkDecision {
                if msg.index == 1 {
                    // Index 0 is a heartbeat; index 1 the first payload.
                    LinkDecision::Drop
                } else {
                    LinkDecision::Deliver {
                        delay: msg.weight.get(),
                    }
                }
            }
        }
        let g = generators::path(3, |_| 3);
        let run = Simulator::new(&g)
            .run_with_oracle(&mut DropFirst, |v, _| {
                Detect::new(
                    Reliable::new(Flood::new(v == NodeId::new(0)), 8),
                    DetectConfig::new(6, 10, 2),
                )
            })
            .unwrap();
        assert!(run.states.iter().all(|s| s.inner().inner().reached));
        assert_eq!(run.cost.drops, 1);
    }

    #[test]
    fn monitored_runs_are_identical_across_cores() {
        let g = generators::connected_gnp(9, 0.35, generators::WeightDist::Uniform(1, 5), 11);
        let run_on = |kind: CoreKind| {
            let mut sim = Simulator::new(&g);
            sim.core(kind).record_trace(1 << 14);
            sim.run_with_oracle(&mut CrashAt(NodeId::new(3), SimTime::new(7)), make)
                .unwrap()
        };
        let b = run_on(CoreKind::Bucket);
        let h = run_on(CoreKind::Heap);
        assert_eq!(b.cost, h.cost);
        assert_eq!(b.trace.events(), h.trace.events());
        assert_eq!(format!("{:?}", b.states), format!("{:?}", h.states));
    }

    /// Instant full-weight delivery with no faults of its own; the
    /// churn/drift plans come from a wrapping [`ChurnOracle`].
    struct Clean;
    impl LinkOracle for Clean {
        fn decide(&mut self, msg: &MsgInfo) -> LinkDecision {
            LinkDecision::Deliver {
                delay: msg.weight.get(),
            }
        }
    }

    #[test]
    fn rejoin_revokes_suspicion_and_upcalls_restored() {
        let g = generators::star(4, |_| 2);
        let victim = NodeId::new(0); // the hub: everyone watches it
        let mut oracle = ChurnOracle::new(
            Clean,
            vec![(victim, vec![SimTime::new(9), SimTime::new(25)])],
            vec![],
        );
        let run = Simulator::new(&g)
            .run_with_oracle(&mut oracle, make)
            .unwrap();
        for v in g.nodes().filter(|v| *v != victim) {
            let s = &run.states[v.index()];
            assert!(!s.suspects(victim), "{v} still suspects a rejoined peer");
            assert_eq!(s.inner().dead_peers, vec![victim], "{v} never suspected");
            assert_eq!(s.inner().restored_peers, vec![victim], "{v} missed rejoin");
        }
        // The rejoined incarnation never falsely suspects the spokes:
        // its watch windows end at the absolute beat-schedule horizon.
        assert_eq!(run.states[victim.index()].suspected().count(), 0);
        assert_eq!(run.cost.recoveries, 1);
        assert!(run.cost.has_churn());
    }

    #[test]
    fn recrash_after_rejoin_is_suspected_again() {
        let g = generators::star(4, |_| 2);
        let victim = NodeId::new(0);
        let mut oracle = ChurnOracle::new(
            Clean,
            vec![(
                victim,
                vec![SimTime::new(9), SimTime::new(25), SimTime::new(33)],
            )],
            vec![],
        );
        let run = Simulator::new(&g)
            .run_with_oracle(&mut oracle, make)
            .unwrap();
        for v in g.nodes().filter(|v| *v != victim) {
            let s = &run.states[v.index()];
            assert!(s.suspects(victim), "{v} missed the recrash");
            assert_eq!(s.inner().dead_peers, vec![victim, victim]);
            assert_eq!(s.inner().restored_peers, vec![victim]);
        }
    }

    #[test]
    fn drift_widens_theta_instead_of_falsely_suspecting() {
        // Weight 2 -> 8 at t = 6: deliveries slow to 8 ticks, so the
        // arm-time θ(2) = 7 would expire between beats. The live θ(e)
        // reads the effective weight and keeps both peers unsuspected.
        let g = generators::path(2, |_| 2);
        let mut oracle = ChurnOracle::new(
            Clean,
            vec![],
            vec![(csp_graph::EdgeId::new(0), SimTime::new(6), Weight::new(8))],
        );
        let run = Simulator::new(&g)
            .run_with_oracle(&mut oracle, make)
            .unwrap();
        for s in &run.states {
            assert_eq!(s.suspected().count(), 0, "false suspicion under drift");
        }
        assert_eq!(run.cost.weight_revisions, 1);
        assert!(run.cost.has_churn());
    }

    #[test]
    fn suspected_channels_stop_paying_heartbeats() {
        // Crash-only: after suspicion the spokes must skip the hub in
        // every later beat round, so the monitored run costs strictly
        // less Auxiliary traffic than the fault-free census 2·m·beats.
        let g = generators::star(5, |_| 2);
        let run = Simulator::new(&g)
            .run_with_oracle(&mut CrashAt(NodeId::new(0), SimTime::new(9)), make)
            .unwrap();
        let census: u64 = 2 * g.edge_count() as u64 * u64::from(cfg().beats);
        assert!(
            run.cost.messages_of(CostClass::Auxiliary) < census,
            "suspected hub still billed for full heartbeat rounds"
        );
    }

    #[test]
    fn horizon_math_is_consistent() {
        let cfg = DetectConfig::new(4, 12, 2);
        assert_eq!(cfg.theta(5), 3 * 4 + 5 + 1);
        // horizon + theta stays within the watch window by construction.
        assert!(cfg.detection_horizon(5) <= cfg.watch_end(5));
    }
}
