//! The event-driven asynchronous runtime.
//!
//! # Event-core layout
//!
//! The hot loop is allocation-free in steady state:
//!
//! * In-flight messages live in a **slab** — a `Vec<Option<Delivery>>`
//!   indexed by slot, with freed slots recycled through a free list. The
//!   scheduling heap stores only `(arrival, seq, slot)` triples; `seq`
//!   preserves global send order, so delivery order is identical to the
//!   reference implementation in [`crate::baseline`].
//! * Per-directed-edge **FIFO floors** live in a flat `Vec<SimTime>` of
//!   length `2·m`, indexed by `2·edge + direction` — no hashing, and no
//!   `n²` table.
//! * The handler outbox buffers are drained by dispatch and recycled
//!   through [`Context`], so a warm run performs zero allocations per
//!   delivered event.
//!
//! The communication budget ([`Simulator::comm_limit`]) is enforced at
//! *dispatch* time: the send that first pushes the metered cost past the
//! budget is the last one accepted, so the overshoot is bounded by a
//! single message weight.

use crate::cost::{CostClass, CostReport};
use crate::delay::{DelayModel, DelayOracle, ModelOracle, MsgInfo};
use crate::process::{Context, Process};
use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent};
use csp_graph::{EdgeId, NodeId, WeightedGraph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// Errors terminating a simulation abnormally.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The event budget was exhausted — the protocol is probably not
    /// terminating (or the budget was set too low for the workload).
    EventLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SimError::EventLimitExceeded { limit } => {
                write!(
                    f,
                    "event limit of {limit} exceeded; protocol may not terminate"
                )
            }
        }
    }
}

impl Error for SimError {}

/// The outcome of a completed (quiescent) run.
#[derive(Debug)]
pub struct Run<P> {
    /// Final per-vertex protocol states, indexed by vertex.
    pub states: Vec<P>,
    /// Metered costs of the whole run.
    pub cost: CostReport,
    /// Whether the run was cut short by [`Simulator::comm_limit`] —
    /// remaining messages were dropped undelivered.
    pub truncated: bool,
    /// Message trace (empty unless [`Simulator::record_trace`] was set).
    pub trace: Trace,
}

/// One in-flight message: everything needed at delivery time.
struct Delivery<M> {
    to: NodeId,
    from: NodeId,
    msg: M,
    sent: SimTime,
    class: CostClass,
    edge: EdgeId,
}

/// Flat-array event queue: scheduling heap + payload slab + FIFO floors.
///
/// See the [module docs](self) for the layout rationale.
struct EventCore<M> {
    /// Min-heap of `(arrival, seq, slot)`. `seq` is globally unique so
    /// ties at equal arrival break in send order, exactly like the
    /// baseline's `(arrival, seq)` key.
    queue: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    /// Payloads, indexed by slot. `None` marks a free slot.
    slab: Vec<Option<Delivery<M>>>,
    /// Slots vacated by delivered events, reused before growing the slab.
    free: Vec<usize>,
    /// Earliest admissible arrival per directed edge, indexed by
    /// `2·edge + direction`. `SimTime::ZERO` is the identity for the
    /// `max` floor update since every arrival is strictly positive.
    fifo_floor: Vec<SimTime>,
    seq: u64,
}

impl<M> EventCore<M> {
    fn new(edge_count: usize) -> Self {
        EventCore {
            queue: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            fifo_floor: vec![SimTime::ZERO; 2 * edge_count],
            seq: 0,
        }
    }

    /// The FIFO-floor index of the channel `from --eid--> other`.
    #[inline]
    fn channel(&self, g: &WeightedGraph, eid: EdgeId, from: NodeId) -> usize {
        2 * eid.index() + usize::from(g.edge(eid).u() != from)
    }

    fn push(&mut self, arrival: SimTime, delivery: Delivery<M>) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s] = Some(delivery);
                s
            }
            None => {
                self.slab.push(Some(delivery));
                self.slab.len() - 1
            }
        };
        self.queue.push(Reverse((arrival, self.seq, slot)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, Delivery<M>)> {
        let Reverse((now, _seq, slot)) = self.queue.pop()?;
        let delivery = self.slab[slot].take().expect("slab slot holds payload");
        self.free.push(slot);
        Some((now, delivery))
    }
}

/// Configurable asynchronous network simulator (non-consuming builder).
///
/// Executes a [`Process`] per vertex with:
///
/// * per-message delays drawn from the configured [`DelayModel`] (default
///   [`DelayModel::WorstCase`], matching the paper's time bounds),
/// * **per-directed-edge FIFO** delivery (a later send on the same channel
///   never overtakes an earlier one — the standard reliable-link
///   assumption, which protocols like GHS require),
/// * deterministic tie-breaking: simultaneous deliveries happen in send
///   order,
/// * weighted cost metering of every send.
///
/// The run ends at *quiescence* — no messages in flight. Protocols in the
/// paper's model (diffusing computations) always reach it; a configurable
/// event budget converts runaway executions into [`SimError`].
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g WeightedGraph,
    delay: DelayModel,
    seed: u64,
    event_limit: u64,
    comm_limit: Option<u128>,
    trace_cap: usize,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator for `graph` with worst-case delays, seed 0 and
    /// a 100-million-event budget.
    pub fn new(graph: &'g WeightedGraph) -> Self {
        Simulator {
            graph,
            delay: DelayModel::WorstCase,
            seed: 0,
            event_limit: 100_000_000,
            comm_limit: None,
            trace_cap: 0,
        }
    }

    /// Sets the delay model.
    pub fn delay(&mut self, delay: DelayModel) -> &mut Self {
        self.delay = delay;
        self
    }

    /// Sets the seed for randomized delay models.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the event budget.
    pub fn event_limit(&mut self, limit: u64) -> &mut Self {
        self.event_limit = limit;
        self
    }

    /// Records up to `cap` delivered messages into [`Run::trace`].
    pub fn record_trace(&mut self, cap: usize) -> &mut Self {
        self.trace_cap = cap;
        self
    }

    /// Caps the weighted communication: once the metered cost exceeds
    /// `limit`, no further sends are accepted, in-flight messages are
    /// dropped, and the run returns with [`Run::truncated`] set. This
    /// models the root *suspending* a sub-protocol in the hybrid
    /// algorithms (Sections 7.2, 8.2, 9.3): the wasted work of a
    /// suspended attempt is bounded by the budget.
    ///
    /// The budget is checked at dispatch time, before each send is
    /// metered, so the recorded cost exceeds `limit` by at most one
    /// message weight.
    pub fn comm_limit(&mut self, limit: u128) -> &mut Self {
        self.comm_limit = Some(limit);
        self
    }

    /// Runs `make(v, graph)`-constructed processes to quiescence under
    /// the configured [`DelayModel`].
    ///
    /// Defined as [`Simulator::run_with_oracle`] over a [`ModelOracle`],
    /// so model-driven and oracle-driven runs are bit-identical by
    /// construction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the protocol does not
    /// quiesce within the event budget.
    pub fn run<P, F>(&self, make: F) -> Result<Run<P>, SimError>
    where
        P: Process,
        F: FnMut(NodeId, &WeightedGraph) -> P,
    {
        self.run_with_oracle(&mut ModelOracle::new(self.delay, self.seed), make)
    }

    /// Runs `make(v, graph)`-constructed processes to quiescence with
    /// every message's delay decided by `oracle` at dispatch time.
    ///
    /// The oracle's decisions are clamped into `[1, w(e)]` (the paper's
    /// adversary range, quantized — see the [`crate::delay`] module
    /// docs), and per-directed-edge FIFO order is enforced afterwards.
    /// The configured [`DelayModel`] and seed are ignored on this path.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the protocol does not
    /// quiesce within the event budget.
    pub fn run_with_oracle<P, F, O>(&self, oracle: &mut O, mut make: F) -> Result<Run<P>, SimError>
    where
        P: Process,
        F: FnMut(NodeId, &WeightedGraph) -> P,
        O: DelayOracle + ?Sized,
    {
        let g = self.graph;
        let mut states: Vec<P> = g.nodes().map(|v| make(v, g)).collect();
        let mut cost = CostReport::new(g.edge_count());
        let mut core: EventCore<P::Msg> = EventCore::new(g.edge_count());
        let mut truncated = false;
        let mut trace = Trace::new(self.trace_cap);

        // Handler buffers, drained by dispatch and recycled every event.
        let mut outbox: Vec<(NodeId, P::Msg, CostClass)> = Vec::new();
        let mut out_edges: Vec<EdgeId> = Vec::new();

        let dispatch = |outbox: &mut Vec<(NodeId, P::Msg, CostClass)>,
                        out_edges: &mut Vec<EdgeId>,
                        from: NodeId,
                        now: SimTime,
                        core: &mut EventCore<P::Msg>,
                        cost: &mut CostReport,
                        truncated: &mut bool,
                        oracle: &mut O| {
            for ((to, msg, class), eid) in outbox.drain(..).zip(out_edges.drain(..)) {
                // Budget check happens *before* metering: the send that
                // crossed the limit was the last one paid for, so the
                // overshoot is at most one message weight.
                if *truncated
                    || self
                        .comm_limit
                        .is_some_and(|lim| cost.weighted_comm.raw() > lim)
                {
                    *truncated = true;
                    continue;
                }
                let w = g.weight(eid);
                let index = cost.messages;
                cost.record_send(eid, w, class);
                let channel = core.channel(g, eid, from);
                let delay = oracle
                    .delay(&MsgInfo {
                        index,
                        edge: eid,
                        dir: (channel & 1) as u8,
                        weight: w,
                        from,
                        to,
                        sent: now,
                    })
                    .clamp(1, w.get());
                let arrival = (now + delay).max(core.fifo_floor[channel]);
                core.fifo_floor[channel] = arrival;
                core.push(
                    arrival,
                    Delivery {
                        to,
                        from,
                        msg,
                        sent: now,
                        class,
                        edge: eid,
                    },
                );
            }
        };

        // Time zero: start every vertex.
        for v in g.nodes() {
            let mut ctx = Context::recycled(v, SimTime::ZERO, g, outbox, out_edges);
            states[v.index()].on_start(&mut ctx);
            (outbox, out_edges) = ctx.into_parts();
            dispatch(
                &mut outbox,
                &mut out_edges,
                v,
                SimTime::ZERO,
                &mut core,
                &mut cost,
                &mut truncated,
                &mut *oracle,
            );
        }

        let mut events: u64 = 0;
        while !truncated {
            let Some((now, delivery)) = core.pop() else {
                break;
            };
            events += 1;
            if events > self.event_limit {
                return Err(SimError::EventLimitExceeded {
                    limit: self.event_limit,
                });
            }
            cost.completion = cost.completion.max(now);
            if self.trace_cap > 0 {
                trace.push(TraceEvent {
                    from: delivery.from,
                    to: delivery.to,
                    edge: delivery.edge,
                    sent: delivery.sent,
                    delivered: now,
                    class: delivery.class,
                });
            }
            let mut ctx = Context::recycled(delivery.to, now, g, outbox, out_edges);
            states[delivery.to.index()].on_message(delivery.from, delivery.msg, &mut ctx);
            (outbox, out_edges) = ctx.into_parts();
            dispatch(
                &mut outbox,
                &mut out_edges,
                delivery.to,
                now,
                &mut core,
                &mut cost,
                &mut truncated,
                &mut *oracle,
            );
        }

        Ok(Run {
            states,
            cost,
            truncated,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::{generators, Cost};

    /// Ping-pong `rounds` times between the endpoints of a single edge.
    struct PingPong {
        rounds: u32,
        received: u32,
    }

    impl Process for PingPong {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.self_id() == NodeId::new(0) && self.rounds > 0 {
                ctx.send(NodeId::new(1), 1);
            }
        }

        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<'_, u32>) {
            self.received += 1;
            if msg < self.rounds {
                ctx.send(from, msg + 1);
            }
        }
    }

    #[test]
    fn ping_pong_costs_add_up() {
        let g = generators::path(2, |_| 5);
        let run = Simulator::new(&g)
            .run(|_, _| PingPong {
                rounds: 4,
                received: 0,
            })
            .unwrap();
        // 4 messages, each of weight 5, each taking exactly 5 ticks.
        assert_eq!(run.cost.messages, 4);
        assert_eq!(run.cost.weighted_comm, Cost::new(20));
        assert_eq!(run.cost.completion, SimTime::new(20));
        assert_eq!(run.states[0].received + run.states[1].received, 4);
    }

    #[test]
    fn eager_delay_shrinks_time_not_cost() {
        let g = generators::path(2, |_| 5);
        let run = Simulator::new(&g)
            .delay(DelayModel::Eager)
            .run(|_, _| PingPong {
                rounds: 4,
                received: 0,
            })
            .unwrap();
        assert_eq!(run.cost.weighted_comm, Cost::new(20)); // cost unchanged
        assert_eq!(run.cost.completion, SimTime::new(4)); // 4 unit hops
    }

    #[test]
    fn uniform_delays_are_reproducible() {
        let g = generators::cycle(8, |i| 1 + i as u64 % 7);
        let run_with = |seed: u64| {
            Simulator::new(&g)
                .delay(DelayModel::Uniform)
                .seed(seed)
                .run(|_, _| PingPong {
                    rounds: 6,
                    received: 0,
                })
                .unwrap()
                .cost
        };
        assert_eq!(run_with(3), run_with(3));
    }

    #[test]
    fn event_limit_catches_infinite_protocols() {
        /// Bounces a message forever.
        #[derive(Debug)]
        struct Forever;
        impl Process for Forever {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.self_id() == NodeId::new(0) {
                    ctx.send(NodeId::new(1), ());
                }
            }
            fn on_message(&mut self, from: NodeId, _msg: (), ctx: &mut Context<'_, ()>) {
                ctx.send(from, ());
            }
        }
        let g = generators::path(2, |_| 1);
        let err = Simulator::new(&g)
            .event_limit(1000)
            .run(|_, _| Forever)
            .unwrap_err();
        assert_eq!(err, SimError::EventLimitExceeded { limit: 1000 });
    }

    /// Sends a burst of numbered messages; receiver checks FIFO order.
    struct FifoCheck {
        next_expected: u32,
        violations: u32,
    }

    impl Process for FifoCheck {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.self_id() == NodeId::new(0) {
                for i in 0..50 {
                    ctx.send(NodeId::new(1), i);
                }
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: u32, _ctx: &mut Context<'_, u32>) {
            if msg != self.next_expected {
                self.violations += 1;
            }
            self.next_expected = msg + 1;
        }
    }

    #[test]
    fn fifo_order_is_preserved_under_random_delays() {
        let g = generators::path(2, |_| 100);
        for seed in 0..5 {
            let run = Simulator::new(&g)
                .delay(DelayModel::Uniform)
                .seed(seed)
                .run(|_, _| FifoCheck {
                    next_expected: 0,
                    violations: 0,
                })
                .unwrap();
            assert_eq!(run.states[1].violations, 0, "FIFO violated at seed {seed}");
        }
    }

    #[test]
    fn quiescent_protocol_reports_zero() {
        struct Silent;
        impl Process for Silent {
            type Msg = ();
            fn on_start(&mut self, _ctx: &mut Context<'_, ()>) {}
            fn on_message(&mut self, _f: NodeId, _m: (), _ctx: &mut Context<'_, ()>) {}
        }
        let g = generators::cycle(4, |_| 2);
        let run = Simulator::new(&g).run(|_, _| Silent).unwrap();
        assert_eq!(run.cost.messages, 0);
        assert_eq!(run.cost.completion, SimTime::ZERO);
    }

    #[test]
    fn comm_limit_overshoot_is_at_most_one_message() {
        // Every message has weight 7; budget 20 admits sends at metered
        // cost 0, 7, 14 and rejects the one at 21 — so the recorded cost
        // must land in (20, 20 + 7].
        let g = generators::path(2, |_| 7);
        let run = Simulator::new(&g)
            .comm_limit(20)
            .run(|_, _| PingPong {
                rounds: 100,
                received: 0,
            })
            .unwrap();
        assert!(run.truncated);
        let cost = run.cost.weighted_comm.raw();
        assert!(cost > 20, "budget not exhausted: {cost}");
        assert!(cost <= 20 + 7, "overshoot exceeds one message: {cost}");
        // Every metered message was actually delivered: dispatch-time
        // enforcement never pays for a dropped send.
        assert_eq!(
            run.cost.messages,
            u64::from(run.states[0].received + run.states[1].received)
        );
    }

    #[test]
    fn comm_limit_zero_truncates_after_first_message() {
        let g = generators::path(2, |_| 3);
        let run = Simulator::new(&g)
            .comm_limit(0)
            .run(|_, _| PingPong {
                rounds: 100,
                received: 0,
            })
            .unwrap();
        // The first send is metered (cost 0 is not > 0); the reply is
        // rejected at dispatch.
        assert!(run.truncated);
        assert_eq!(run.cost.messages, 1);
        assert_eq!(run.cost.weighted_comm, Cost::new(3));
    }

    #[test]
    fn slab_slots_are_reused_across_deliveries() {
        // A long chain keeps at most one message in flight, so the slab
        // never grows past one slot no matter how many events run.
        struct Chain;
        impl Process for Chain {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                if ctx.self_id() == NodeId::new(0) {
                    ctx.send(NodeId::new(1), 0);
                }
            }
            fn on_message(&mut self, from: NodeId, hops: u32, ctx: &mut Context<'_, u32>) {
                if hops < 1000 {
                    ctx.send(from, hops + 1);
                }
            }
        }
        let g = generators::path(2, |_| 1);
        let run = Simulator::new(&g).run(|_, _| Chain).unwrap();
        assert_eq!(run.cost.messages, 1001);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::process::{Context, Process};
    use csp_graph::generators;
    use csp_graph::NodeId;

    struct Chain {
        last: bool,
    }

    impl Process for Chain {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.self_id() == NodeId::new(0) {
                ctx.send(NodeId::new(1), 0);
            }
        }
        fn on_message(&mut self, _from: NodeId, hops: u32, ctx: &mut Context<'_, u32>) {
            let me = ctx.self_id().index();
            if me + 1 < ctx.node_count() {
                ctx.send(NodeId::new(me + 1), hops + 1);
            } else {
                self.last = true;
            }
        }
    }

    #[test]
    fn trace_records_every_delivery_in_order() {
        let g = generators::path(5, |i| i as u64 + 1);
        let run = Simulator::new(&g)
            .record_trace(64)
            .run(|_, _| Chain { last: false })
            .unwrap();
        assert_eq!(run.trace.len(), 4);
        assert!(run.trace.is_fifo());
        // Latencies equal the edge weights under worst-case delays.
        for (i, e) in run.trace.events().iter().enumerate() {
            assert_eq!(e.latency(), i as u64 + 1);
            assert_eq!(e.from, NodeId::new(i));
            assert_eq!(e.to, NodeId::new(i + 1));
        }
        assert!(run.states[4].last);
    }

    #[test]
    fn trace_cap_is_honored() {
        let g = generators::path(8, |_| 1);
        let run = Simulator::new(&g)
            .record_trace(3)
            .run(|_, _| Chain { last: false })
            .unwrap();
        assert_eq!(run.trace.len(), 3);
        assert_eq!(run.trace.dropped(), 4);
    }

    #[test]
    fn trace_disabled_by_default() {
        let g = generators::path(4, |_| 1);
        let run = Simulator::new(&g)
            .run(|_, _| Chain { last: false })
            .unwrap();
        assert!(run.trace.is_empty());
    }
}
