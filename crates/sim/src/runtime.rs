//! The event-driven asynchronous runtime.
//!
//! # Event-core layout
//!
//! The hot loop is allocation-free in steady state:
//!
//! * In-flight messages live in a **slab** — a `Vec<Option<Delivery>>`
//!   indexed by slot, with freed slots recycled through a free list. The
//!   scheduling queue stores only `(arrival, seq, slot)` triples; `seq`
//!   preserves global send order, so delivery order is identical to the
//!   reference implementation in [`crate::baseline`].
//! * The scheduling queue itself is a [`BucketQueue`] by default:
//!   arrivals are monotone and within `max_weight` of the clock, so an
//!   integer-keyed bucket ladder gives O(1) amortized push/pop (see
//!   [`crate::queue`] for the invariants). The retained `BinaryHeap`
//!   core stays selectable via [`Simulator::core`] as the differential
//!   reference.
//! * Per-directed-edge **FIFO floors** live in a flat `Vec<SimTime>` of
//!   length `2·m`, indexed by `2·edge + direction` — no hashing, and no
//!   `n²` table.
//! * The handler outbox buffers are drained by dispatch and recycled
//!   through [`Context`], so a warm run performs zero allocations per
//!   delivered event.
//!
//! The communication budget ([`Simulator::comm_limit`]) is enforced at
//! *dispatch* time: the send that first pushes the metered cost past the
//! budget is the last one accepted, so the overshoot is bounded by a
//! single message weight.
//!
//! # Faults and timers
//!
//! The dispatch hook is a [`LinkOracle`]: besides choosing delays it may
//! [`Drop`](LinkDecision::Drop) messages (metered, index-consuming, but
//! never enqueued) and toggle vertices between alive and crashed at
//! chosen times ([`LinkOracle::churn_plan`], queried once per vertex at
//! start — the crash-stop special case is a single-toggle plan derived
//! from [`LinkOracle::crash_at`]). Events addressed to a crashed vertex
//! — deliveries and timer fires alike — are consumed as dead events. A
//! rejoin toggle restarts the vertex with a *fresh* protocol state:
//! `on_start` runs again at the rejoin instant, timers armed by earlier
//! incarnations are retired behind a per-vertex floor, and in-flight
//! messages arriving at or after the rejoin reach the fresh state.
//! Edge weights may also drift mid-run ([`LinkOracle::drift_plan`]):
//! from a revision's instant onward, delay clamping, cost metering and
//! [`Context::weight_of`](crate::Context::weight_of) all see the new
//! weight. Local timers
//! ([`Context::set_timer`](crate::Context::set_timer) /
//! [`Process::on_timer`]) share the event queue and its deterministic
//! `(time, seq)` order but are free: they meter no communication and a
//! timer fire by itself never advances the run's completion time, which
//! remains the time of the last delivered message.
//!
//! # Checkpoints and pooled evaluation
//!
//! For search workloads that re-simulate many near-identical runs (see
//! `csp-adversary`), the runtime additionally supports:
//!
//! * [`Simulator::run_with_checkpoints`] — a run that snapshots its
//!   complete state ([`Checkpoint`]) every time the metered message
//!   count crosses a mark, and [`Simulator::resume`] /
//!   [`Simulator::eval_resume`] which continue a run from a snapshot
//!   under a (possibly different) oracle. A resumed run is bit-identical
//!   to a cold run whose oracle agrees on every message index below the
//!   checkpoint — the property the adversary's prefix-sharing hill-climb
//!   exploits, pinned by `tests/flat_core_differential.rs`.
//! * [`EvalPool`] + [`Simulator::eval`] — repeated evaluation that
//!   retains every buffer (slab, queue, floors, states, outboxes)
//!   between runs, reporting only an [`EvalSummary`] instead of
//!   returning owned state.

use crate::cost::{CostClass, CostReport};
use crate::delay::{DelayModel, LinkDecision, LinkOracle, ModelOracle, MsgInfo};
use crate::process::{Context, Process, TimerId};
use crate::queue::{BucketQueue, HeapQueue, QueueEntry};
use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent};
use csp_graph::{Cost, EdgeId, NodeId, Weight, WeightedGraph};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Errors terminating a simulation abnormally.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The event budget was exhausted — the protocol is probably not
    /// terminating (or the budget was set too low for the workload).
    EventLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SimError::EventLimitExceeded { limit } => {
                write!(
                    f,
                    "event limit of {limit} exceeded; protocol may not terminate"
                )
            }
        }
    }
}

impl Error for SimError {}

/// The outcome of a completed (quiescent) run.
#[derive(Debug)]
pub struct Run<P> {
    /// Final per-vertex protocol states, indexed by vertex.
    pub states: Vec<P>,
    /// Metered costs of the whole run.
    pub cost: CostReport,
    /// Whether the run was cut short by [`Simulator::comm_limit`] —
    /// remaining messages were dropped undelivered.
    pub truncated: bool,
    /// Message trace (empty unless [`Simulator::record_trace`] was set).
    pub trace: Trace,
}

/// Which scheduling-queue implementation drives the event core.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CoreKind {
    /// The integer-keyed bucket ladder ([`BucketQueue`]) — the default
    /// and the fast path.
    #[default]
    Bucket,
    /// The retained `BinaryHeap` core ([`HeapQueue`]) — the reference
    /// implementation the bucket core is differentially tested against.
    Heap,
}

/// One in-flight message: everything needed at delivery time. `Copy`
/// for copyable payloads so slab restores on the checkpoint-resume path
/// specialize to memcpy.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Delivery<M> {
    pub(crate) to: NodeId,
    pub(crate) from: NodeId,
    pub(crate) msg: M,
    pub(crate) sent: SimTime,
    pub(crate) class: CostClass,
    pub(crate) edge: EdgeId,
}

/// One scheduled occurrence: a message delivery, a local timer fire, or
/// a scheduled rejoin of a churned vertex. All three ride the same
/// `(time, seq)` queue, so the merged order is deterministic. Rejoins
/// are pushed at time zero with the lowest sequence numbers, so on a
/// time tie the restart runs before anything else at that instant and
/// messages arriving exactly then reach the fresh state.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Event<M> {
    Msg(Delivery<M>),
    Timer { node: NodeId, id: u64 },
    Rejoin { node: NodeId },
}

/// The scheduling queue behind [`EventCore`], dispatched by [`CoreKind`].
/// Shared with the sharded runtime ([`crate::shard`]), whose per-shard
/// cores need the same kind dispatch.
#[derive(Clone, Debug)]
pub(crate) enum Queue {
    Bucket(BucketQueue),
    Heap(HeapQueue),
}

impl Queue {
    pub(crate) fn new(kind: CoreKind, max_delay: u64) -> Self {
        match kind {
            CoreKind::Bucket => Queue::Bucket(BucketQueue::new(max_delay)),
            CoreKind::Heap => Queue::Heap(HeapQueue::new()),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, time: u64, seq: u64, slot: usize) {
        match self {
            Queue::Bucket(q) => q.push(time, seq, slot),
            Queue::Heap(q) => q.push(time, seq, slot),
        }
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<QueueEntry> {
        match self {
            Queue::Bucket(q) => q.pop(),
            Queue::Heap(q) => q.pop(),
        }
    }

    /// Earliest scheduled time without popping — `None` when empty.
    #[inline]
    pub(crate) fn next_time(&mut self) -> Option<u64> {
        match self {
            Queue::Bucket(q) => q.next_time(),
            Queue::Heap(q) => q.next_time(),
        }
    }

    fn snapshot_sorted(&self) -> Vec<QueueEntry> {
        match self {
            Queue::Bucket(q) => q.snapshot_sorted(),
            Queue::Heap(q) => q.snapshot_sorted(),
        }
    }

    /// Pushes that fell back to the overflow heap — zero on the heap
    /// core, which has no window to overflow.
    pub(crate) fn overflow_pushes(&self) -> u64 {
        match self {
            Queue::Bucket(q) => q.overflow_pushes(),
            Queue::Heap(_) => 0,
        }
    }

    /// Overwrites this queue with a snapshotted one. Same-kind restores
    /// are allocation-reusing field copies (the hot checkpoint-resume
    /// path); a kind mismatch — resuming a checkpoint on a simulator
    /// with the other core — rebuilds from the sorted entry view, which
    /// both kinds accept.
    fn restore(&mut self, src: &Queue) {
        match (&mut *self, src) {
            (Queue::Bucket(a), Queue::Bucket(b)) => a.clone_from(b),
            (Queue::Heap(a), Queue::Heap(b)) => a.clone_from(b),
            (me, other) => match me {
                Queue::Bucket(q) => q.restore(&other.snapshot_sorted()),
                Queue::Heap(q) => q.restore(&other.snapshot_sorted()),
            },
        }
    }
}

/// Flat-array event core: scheduling queue + payload slab + FIFO floors.
///
/// See the [module docs](self) for the layout rationale.
struct EventCore<M> {
    /// Min-queue of `(arrival, seq, slot)`. `seq` is globally unique so
    /// ties at equal arrival break in send order, exactly like the
    /// baseline's `(arrival, seq)` key.
    queue: Queue,
    /// Payloads, indexed by slot. `None` marks a free slot.
    slab: Vec<Option<Event<M>>>,
    /// Slots vacated by delivered events, reused before growing the slab.
    free: Vec<usize>,
    /// Earliest admissible arrival per directed edge, indexed by
    /// `2·edge + direction`. `SimTime::ZERO` is the identity for the
    /// `max` floor update since every arrival is strictly positive.
    fifo_floor: Vec<SimTime>,
    seq: u64,
}

impl<M> EventCore<M> {
    fn new(kind: CoreKind, edge_count: usize, max_delay: u64) -> Self {
        EventCore {
            queue: Queue::new(kind, max_delay),
            slab: Vec::new(),
            free: Vec::new(),
            fifo_floor: vec![SimTime::ZERO; 2 * edge_count],
            seq: 0,
        }
    }

    /// Rewinds the core to a fresh state for `edge_count`/`max_delay`,
    /// keeping every allocation that still fits (the pooled-evaluation
    /// path). A kind change or an undersized bucket window rebuilds just
    /// the queue.
    fn reset(&mut self, kind: CoreKind, edge_count: usize, max_delay: u64) {
        self.ensure_queue(kind, max_delay);
        match &mut self.queue {
            Queue::Bucket(q) => q.clear(),
            Queue::Heap(q) => q.clear(),
        }
        self.slab.clear();
        self.free.clear();
        self.fifo_floor.clear();
        self.fifo_floor.resize(2 * edge_count, SimTime::ZERO);
        self.seq = 0;
    }

    /// Makes the queue's kind and window match `kind`/`max_delay`,
    /// rebuilding only on mismatch — the contents are untouched
    /// otherwise, so callers that immediately `restore` (which clears
    /// first) skip a redundant wipe.
    fn ensure_queue(&mut self, kind: CoreKind, max_delay: u64) {
        match (&mut self.queue, kind) {
            (Queue::Bucket(q), CoreKind::Bucket)
                if q.capacity() >= BucketQueue::capacity_for(max_delay) => {}
            (Queue::Heap(_), CoreKind::Heap) => {}
            (queue, kind) => *queue = Queue::new(kind, max_delay),
        }
    }

    /// The FIFO-floor index of the channel `from --eid--> other`.
    #[inline]
    fn channel(&self, g: &WeightedGraph, eid: EdgeId, from: NodeId) -> usize {
        2 * eid.index() + usize::from(g.edge(eid).u() != from)
    }

    fn push(&mut self, arrival: SimTime, event: Event<M>) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s] = Some(event);
                s
            }
            None => {
                self.slab.push(Some(event));
                self.slab.len() - 1
            }
        };
        self.queue.push(arrival.get(), self.seq, slot);
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, Event<M>)> {
        let (now, _seq, slot) = self.queue.pop()?;
        let event = self.slab[slot].take().expect("slab slot holds payload");
        self.free.push(slot);
        Some((SimTime::new(now), event))
    }
}

impl<M: Clone> EventCore<M> {
    /// Overwrites the core with a checkpoint's event state, reusing the
    /// existing allocations where possible.
    fn restore_from<P: Process<Msg = M>>(&mut self, cp: &Checkpoint<P>) {
        self.slab.clone_from(&cp.slab);
        self.free.clone_from(&cp.free);
        self.fifo_floor.clone_from(&cp.fifo_floor);
        self.queue.restore(&cp.queue);
        self.seq = cp.seq;
    }
}

/// The complete mutable state of a run in flight: process states, cost
/// meters, the event core and the recycled handler buffers. Owned by a
/// single run, or retained across runs inside an [`EvalPool`].
struct Machine<P: Process> {
    states: Vec<P>,
    cost: CostReport,
    core: EventCore<P::Msg>,
    truncated: bool,
    trace: Trace,
    events: u64,
    outbox: Vec<(NodeId, P::Msg, CostClass)>,
    out_edges: Vec<EdgeId>,
    /// Adversary-chosen churn plan per vertex — strictly increasing
    /// toggle times alternating crash / rejoin / crash / …, filled once
    /// from [`LinkOracle::churn_plan`] before time zero. Empty = the
    /// vertex never churns; a single entry is classic crash-stop.
    churn: Vec<Vec<SimTime>>,
    /// Fresh states for scheduled rejoins, per vertex, stored earliest
    /// rejoin *last* so execution pops them in rejoin order. Fabricated
    /// by the same `make` closure as the primary states, right after
    /// them, so construction order is deterministic.
    rejoin_states: Vec<Vec<P>>,
    /// Per-vertex timer-id floor: ids below it belong to a previous
    /// incarnation and are consumed as dead events at pop time. Bumped
    /// to the vertex's current timer seq at each rejoin.
    timer_floor: Vec<u64>,
    /// Adversary-chosen weight revisions, sorted by revision time
    /// (stable, so same-time revisions apply in plan order), filled once
    /// from [`LinkOracle::drift_plan`] before time zero.
    drift_plan: Vec<(EdgeId, SimTime, Weight)>,
    /// First entry of `drift_plan` not yet applied to `eff`.
    drift_cursor: usize,
    /// Effective weight per edge — the graph's static weights with every
    /// revision at or before the current instant applied. Dispatch
    /// meters and clamps against this table, and handlers observe it
    /// through [`Context::weight_of`](crate::Context::weight_of).
    eff: Vec<Weight>,
    /// Per-vertex metered-send count — the `msg_base` of the vertex's
    /// next handler. Advances exactly when [`CostReport::messages`]
    /// does, but per sender, so token assignment depends only on the
    /// vertex's own history (what lets shards run handlers in parallel).
    node_msg_seq: Vec<u64>,
    /// Next timer id per vertex — unique per vertex, never reused.
    node_timer_seq: Vec<u64>,
    /// `(vertex, id)` pairs cancelled before firing; membership is
    /// consumed at pop time.
    cancelled: HashSet<(NodeId, u64)>,
    /// Recycled handler buffers for armed delays / cancelled ids.
    timers: Vec<u64>,
    cancels: Vec<u64>,
}

impl<P: Process> Machine<P> {
    fn new(kind: CoreKind, g: &WeightedGraph, trace_cap: usize) -> Self {
        Machine {
            states: Vec::new(),
            cost: CostReport::new(g.edge_count()),
            core: EventCore::new(kind, g.edge_count(), g.max_weight().get()),
            truncated: false,
            trace: Trace::new(trace_cap),
            events: 0,
            outbox: Vec::new(),
            out_edges: Vec::new(),
            churn: Vec::new(),
            rejoin_states: Vec::new(),
            timer_floor: Vec::new(),
            drift_plan: Vec::new(),
            drift_cursor: 0,
            eff: Vec::new(),
            node_msg_seq: Vec::new(),
            node_timer_seq: Vec::new(),
            cancelled: HashSet::new(),
            timers: Vec::new(),
            cancels: Vec::new(),
        }
    }

    /// Whether `node` is dead at time `now`: an odd number of churn
    /// toggles has taken effect. Toggles take effect at their chosen
    /// instant inclusive, so a crash at 0 even suppresses `on_start`.
    #[inline]
    fn crashed(&self, node: NodeId, now: SimTime) -> bool {
        self.churn[node.index()]
            .iter()
            .take_while(|&&t| now >= t)
            .count()
            % 2
            == 1
    }

    /// Applies every weight revision at or before `now` to the effective
    /// table. Called once per popped event (and before the time-zero
    /// starts), so every handler and dispatch at time `t` sees exactly
    /// the revisions with time ≤ `t` — the same rule the sharded runtime
    /// applies per tick.
    #[inline]
    fn advance_drift(&mut self, now: SimTime) {
        while let Some(&(e, t, w)) = self.drift_plan.get(self.drift_cursor) {
            if t > now {
                break;
            }
            self.eff[e.index()] = w;
            self.drift_cursor += 1;
        }
    }

    /// Drains the handler outbox into scheduled deliveries: budget check,
    /// cost metering, oracle-decided fate (drops are paid for but never
    /// enqueued; delivery delays are clamped into `[1, w(e)]`),
    /// FIFO-floor enforcement.
    fn dispatch<O: LinkOracle + ?Sized>(
        &mut self,
        g: &WeightedGraph,
        comm_limit: Option<u128>,
        from: NodeId,
        now: SimTime,
        oracle: &mut O,
    ) {
        for ((to, msg, class), eid) in self.outbox.drain(..).zip(self.out_edges.drain(..)) {
            // Budget check happens *before* metering: the send that
            // crossed the limit was the last one paid for, so the
            // overshoot is at most one message weight.
            if self.truncated || comm_limit.is_some_and(|lim| self.cost.weighted_comm.raw() > lim) {
                self.truncated = true;
                continue;
            }
            // Metering, clamping and the oracle's view all use the
            // *effective* weight — drift is visible from its instant on.
            let w = self.eff[eid.index()];
            let index = self.cost.messages;
            self.cost.record_send(eid, w, class);
            // Per-sender token counter moves in lock-step with the
            // metered count (drops included, truncated sends excluded).
            self.node_msg_seq[from.index()] += 1;
            let channel = self.core.channel(g, eid, from);
            let info = MsgInfo {
                index,
                edge: eid,
                dir: (channel & 1) as u8,
                weight: w,
                from,
                to,
                sent: now,
            };
            let delay = match oracle.decide(&info) {
                // A dropped message is paid for and consumes its
                // dispatch index (so record/replay addressing and
                // `MsgToken`s stay stable), but nothing is enqueued and
                // the channel's FIFO floor does not move.
                LinkDecision::Drop => {
                    self.cost.drops += 1;
                    continue;
                }
                LinkDecision::Deliver { delay } => delay.clamp(1, w.get()),
            };
            let arrival = (now + delay).max(self.core.fifo_floor[channel]);
            self.core.fifo_floor[channel] = arrival;
            // Post-clamp, post-floor: the observed arrival is exactly
            // when the delivery fires. Both queue cores dispatch here.
            oracle.observe_arrival(&info, arrival);
            self.core.push(
                arrival,
                Event::Msg(Delivery {
                    to,
                    from,
                    msg,
                    sent: now,
                    class,
                    edge: eid,
                }),
            );
        }
    }

    /// Drains the handler's timer ops: cancellations take effect first
    /// (so a handler that arms and cancels the same timer nets to
    /// nothing), then each armed delay becomes a scheduled
    /// [`Event::Timer`] with the vertex's next id. Timer arrivals
    /// ignore FIFO floors — they are local, not channel traffic.
    fn dispatch_timers(&mut self, node: NodeId, now: SimTime) {
        for id in self.cancels.drain(..) {
            self.cancelled.insert((node, id));
        }
        for delay in self.timers.drain(..) {
            let id = self.node_timer_seq[node.index()];
            self.node_timer_seq[node.index()] += 1;
            if self.cancelled.remove(&(node, id)) {
                continue;
            }
            self.core.push(now + delay, Event::Timer { node, id });
        }
    }
}

/// Per-event hook of the run loop — how checkpoint capture plugs into
/// [`Simulator::run_with_checkpoints`] without taxing plain runs.
trait Capture<P: Process> {
    fn after_event(&mut self, m: &Machine<P>);
}

/// The no-op capture used by every non-checkpointing entry point.
struct NoCapture;

impl<P: Process> Capture<P> for NoCapture {
    #[inline]
    fn after_event(&mut self, _m: &Machine<P>) {}
}

/// Captures a [`Checkpoint`] whenever the metered message count crosses
/// the next multiple-ish mark (marks advance by `every` from wherever
/// the count lands, so bursty dispatches never capture twice).
struct CheckpointCapture<'a, P: Process + Clone> {
    every: u64,
    next_at: u64,
    out: &'a mut Vec<Checkpoint<P>>,
}

impl<P: Process + Clone> Capture<P> for CheckpointCapture<'_, P> {
    fn after_event(&mut self, m: &Machine<P>) {
        if m.cost.messages >= self.next_at {
            self.out.push(Checkpoint::of(m));
            self.next_at = m.cost.messages + self.every;
        }
    }
}

/// A complete snapshot of a run in progress, taken at an event boundary
/// by [`Simulator::run_with_checkpoints`].
///
/// Resuming from a checkpoint ([`Simulator::resume`],
/// [`Simulator::eval_resume`]) reproduces the original run **bit for
/// bit** provided the resuming oracle agrees with the original on every
/// message index at or above [`Checkpoint::messages`] — decisions below
/// that index are already baked into the snapshot's queue, so the
/// resuming oracle is never asked about them. Index-addressed oracles
/// (like `csp-adversary`'s schedule replay) satisfy this by
/// construction; stateful randomized oracles in general do not. Churn
/// plans, stashed rejoin states and the drift plan are part of the
/// snapshot: a resume never queries [`LinkOracle::churn_plan`] or
/// [`LinkOracle::drift_plan`], so the resuming oracle cannot change who
/// churns or how weights move.
#[derive(Clone, Debug)]
pub struct Checkpoint<P: Process> {
    messages: u64,
    events: u64,
    truncated: bool,
    cost: CostReport,
    states: Vec<P>,
    trace: Trace,
    /// The scheduling queue as captured — restoring into the same kind
    /// is a flat copy; the other kind rebuilds from the sorted view.
    queue: Queue,
    slab: Vec<Option<Event<P::Msg>>>,
    free: Vec<usize>,
    fifo_floor: Vec<SimTime>,
    seq: u64,
    churn: Vec<Vec<SimTime>>,
    rejoin_states: Vec<Vec<P>>,
    timer_floor: Vec<u64>,
    drift_plan: Vec<(EdgeId, SimTime, Weight)>,
    drift_cursor: usize,
    eff: Vec<Weight>,
    node_msg_seq: Vec<u64>,
    node_timer_seq: Vec<u64>,
    cancelled: HashSet<(NodeId, u64)>,
}

impl<P: Process + Clone> Checkpoint<P> {
    fn of(m: &Machine<P>) -> Self {
        Checkpoint {
            messages: m.cost.messages,
            events: m.events,
            truncated: m.truncated,
            cost: m.cost.clone(),
            states: m.states.clone(),
            trace: m.trace.clone(),
            queue: m.core.queue.clone(),
            slab: m.core.slab.clone(),
            free: m.core.free.clone(),
            fifo_floor: m.core.fifo_floor.clone(),
            seq: m.core.seq,
            churn: m.churn.clone(),
            rejoin_states: m.rejoin_states.clone(),
            timer_floor: m.timer_floor.clone(),
            drift_plan: m.drift_plan.clone(),
            drift_cursor: m.drift_cursor,
            eff: m.eff.clone(),
            node_msg_seq: m.node_msg_seq.clone(),
            node_timer_seq: m.node_timer_seq.clone(),
            cancelled: m.cancelled.clone(),
        }
    }
}

impl<P: Process> Checkpoint<P> {
    /// Number of messages dispatched (and therefore delay decisions
    /// consumed) before this snapshot — the resume point's position in
    /// schedule-index space.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Number of events delivered before this snapshot.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Completion time of the captured prefix.
    pub fn completion(&self) -> SimTime {
        self.cost.completion
    }
}

/// Reusable simulation state for high-throughput evaluation: the slab,
/// scheduling queue, FIFO floors, process-state vector, cost meters and
/// handler buffers all persist between [`Simulator::eval`] /
/// [`Simulator::eval_resume`] calls, so a warm evaluation performs no
/// per-run setup allocation. Keep one pool per worker thread.
pub struct EvalPool<P: Process> {
    machine: Option<Machine<P>>,
}

impl<P: Process> EvalPool<P> {
    /// Creates an empty pool; buffers materialize on first use.
    pub fn new() -> Self {
        EvalPool { machine: None }
    }
}

impl<P: Process> Default for EvalPool<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Process> fmt::Debug for EvalPool<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EvalPool")
            .field("warm", &self.machine.is_some())
            .finish()
    }
}

/// The result of a pooled evaluation: the run's metered aggregates,
/// without the per-vertex states (which stay in the pool).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EvalSummary {
    /// Completion time (time of the last delivered event).
    pub completion: SimTime,
    /// Total messages dispatched — for a resumed run, *including* the
    /// prefix captured by the checkpoint.
    pub messages: u64,
    /// Weighted communication complexity, prefix included.
    pub weighted_comm: Cost,
    /// Whether the run was cut short by [`Simulator::comm_limit`].
    pub truncated: bool,
    /// Events delivered, prefix included for resumed runs.
    pub events: u64,
}

impl EvalSummary {
    fn of<P: Process>(m: &Machine<P>) -> Self {
        EvalSummary {
            completion: m.cost.completion,
            messages: m.cost.messages,
            weighted_comm: m.cost.weighted_comm,
            truncated: m.truncated,
            events: m.events,
        }
    }
}

/// Configurable asynchronous network simulator (non-consuming builder).
///
/// Executes a [`Process`] per vertex with:
///
/// * per-message delays drawn from the configured [`DelayModel`] (default
///   [`DelayModel::WorstCase`], matching the paper's time bounds),
/// * **per-directed-edge FIFO** delivery (a later send on the same channel
///   never overtakes an earlier one — the standard reliable-link
///   assumption, which protocols like GHS require),
/// * deterministic tie-breaking: simultaneous deliveries happen in send
///   order,
/// * weighted cost metering of every send.
///
/// The run ends at *quiescence* — no messages in flight. Protocols in the
/// paper's model (diffusing computations) always reach it; a configurable
/// event budget converts runaway executions into [`SimError`].
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g WeightedGraph,
    delay: DelayModel,
    seed: u64,
    event_limit: u64,
    comm_limit: Option<u128>,
    trace_cap: usize,
    core: CoreKind,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator for `graph` with worst-case delays, seed 0 and
    /// a 100-million-event budget.
    pub fn new(graph: &'g WeightedGraph) -> Self {
        Simulator {
            graph,
            delay: DelayModel::WorstCase,
            seed: 0,
            event_limit: 100_000_000,
            comm_limit: None,
            trace_cap: 0,
            core: CoreKind::Bucket,
        }
    }

    /// Sets the delay model.
    pub fn delay(&mut self, delay: DelayModel) -> &mut Self {
        self.delay = delay;
        self
    }

    /// Sets the seed for randomized delay models.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the event budget.
    pub fn event_limit(&mut self, limit: u64) -> &mut Self {
        self.event_limit = limit;
        self
    }

    /// Records up to `cap` delivered messages into [`Run::trace`].
    pub fn record_trace(&mut self, cap: usize) -> &mut Self {
        self.trace_cap = cap;
        self
    }

    /// Selects the scheduling-queue implementation (default
    /// [`CoreKind::Bucket`]). Both cores produce bit-identical runs; the
    /// heap core exists as the differential reference and for
    /// before/after benchmarking.
    pub fn core(&mut self, kind: CoreKind) -> &mut Self {
        self.core = kind;
        self
    }

    /// Caps the weighted communication: once the metered cost exceeds
    /// `limit`, no further sends are accepted, in-flight messages are
    /// dropped, and the run returns with [`Run::truncated`] set. This
    /// models the root *suspending* a sub-protocol in the hybrid
    /// algorithms (Sections 7.2, 8.2, 9.3): the wasted work of a
    /// suspended attempt is bounded by the budget.
    ///
    /// The budget is checked at dispatch time, before each send is
    /// metered, so the recorded cost exceeds `limit` by at most one
    /// message weight.
    pub fn comm_limit(&mut self, limit: u128) -> &mut Self {
        self.comm_limit = Some(limit);
        self
    }

    /// Runs `make(v, graph)`-constructed processes to quiescence under
    /// the configured [`DelayModel`].
    ///
    /// Defined as [`Simulator::run_with_oracle`] over a [`ModelOracle`],
    /// so model-driven and oracle-driven runs are bit-identical by
    /// construction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the protocol does not
    /// quiesce within the event budget.
    pub fn run<P, F>(&self, make: F) -> Result<Run<P>, SimError>
    where
        P: Process,
        F: FnMut(NodeId, &WeightedGraph) -> P,
    {
        self.run_with_oracle(&mut ModelOracle::new(self.delay, self.seed), make)
    }

    /// Runs `make(v, graph)`-constructed processes to quiescence with
    /// every message's delay decided by `oracle` at dispatch time.
    ///
    /// The oracle's decisions are clamped into `[1, w(e)]` (the paper's
    /// adversary range, quantized — see the [`crate::delay`] module
    /// docs), and per-directed-edge FIFO order is enforced afterwards.
    /// The configured [`DelayModel`] and seed are ignored on this path.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the protocol does not
    /// quiesce within the event budget.
    pub fn run_with_oracle<P, F, O>(&self, oracle: &mut O, make: F) -> Result<Run<P>, SimError>
    where
        P: Process,
        F: FnMut(NodeId, &WeightedGraph) -> P,
        O: LinkOracle + ?Sized,
    {
        let mut m = Machine::new(self.core, self.graph, self.trace_cap);
        self.start(&mut m, make, oracle);
        self.exec(oracle, &mut m, &mut NoCapture)?;
        Ok(Run {
            states: m.states,
            cost: m.cost,
            truncated: m.truncated,
            trace: m.trace,
        })
    }

    /// Like [`Simulator::run_with_oracle`], but snapshots the complete
    /// run state into `checkpoints` every time the metered message count
    /// crosses a multiple-of-`every` mark (an initial snapshot is also
    /// taken right after the time-zero starts if they already dispatched
    /// `every` messages). `every` must be non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the protocol does not
    /// quiesce within the event budget.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn run_with_checkpoints<P, F, O>(
        &self,
        oracle: &mut O,
        make: F,
        every: u64,
        checkpoints: &mut Vec<Checkpoint<P>>,
    ) -> Result<Run<P>, SimError>
    where
        P: Process + Clone,
        F: FnMut(NodeId, &WeightedGraph) -> P,
        O: LinkOracle + ?Sized,
    {
        assert!(every > 0, "checkpoint interval must be non-zero");
        let mut m = Machine::new(self.core, self.graph, self.trace_cap);
        self.start(&mut m, make, oracle);
        let mut capture = CheckpointCapture {
            every,
            next_at: every,
            out: checkpoints,
        };
        capture.after_event(&m);
        self.exec(oracle, &mut m, &mut capture)?;
        Ok(Run {
            states: m.states,
            cost: m.cost,
            truncated: m.truncated,
            trace: m.trace,
        })
    }

    /// Continues a checkpointed run to quiescence under `oracle`.
    ///
    /// See [`Checkpoint`] for the oracle-agreement condition under which
    /// the result is bit-identical to a cold run. The simulator's
    /// configured core may differ from the one that took the snapshot —
    /// checkpoints are queue-implementation agnostic.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the protocol does not
    /// quiesce within the event budget (delivered events count from the
    /// checkpoint's total, not from zero).
    pub fn resume<P, O>(&self, cp: &Checkpoint<P>, oracle: &mut O) -> Result<Run<P>, SimError>
    where
        P: Process + Clone,
        O: LinkOracle + ?Sized,
    {
        let g = self.graph;
        debug_assert_eq!(
            cp.fifo_floor.len(),
            2 * g.edge_count(),
            "checkpoint/graph mismatch"
        );
        let mut m = Machine {
            states: cp.states.clone(),
            cost: cp.cost.clone(),
            core: EventCore::new(self.core, g.edge_count(), g.max_weight().get()),
            truncated: cp.truncated,
            trace: cp.trace.clone(),
            events: cp.events,
            outbox: Vec::new(),
            out_edges: Vec::new(),
            churn: cp.churn.clone(),
            rejoin_states: cp.rejoin_states.clone(),
            timer_floor: cp.timer_floor.clone(),
            drift_plan: cp.drift_plan.clone(),
            drift_cursor: cp.drift_cursor,
            eff: cp.eff.clone(),
            node_msg_seq: cp.node_msg_seq.clone(),
            node_timer_seq: cp.node_timer_seq.clone(),
            cancelled: cp.cancelled.clone(),
            timers: Vec::new(),
            cancels: Vec::new(),
        };
        m.core.restore_from(cp);
        self.exec(oracle, &mut m, &mut NoCapture)?;
        Ok(Run {
            states: m.states,
            cost: m.cost,
            truncated: m.truncated,
            trace: m.trace,
        })
    }

    /// Runs a full evaluation out of `pool`, reusing every buffer the
    /// pool retained from earlier evaluations. Traces are not recorded
    /// on this path and final states stay inside the pool; only the
    /// metered aggregates come back.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the protocol does not
    /// quiesce within the event budget.
    pub fn eval<P, F, O>(
        &self,
        pool: &mut EvalPool<P>,
        oracle: &mut O,
        make: F,
    ) -> Result<EvalSummary, SimError>
    where
        P: Process,
        F: FnMut(NodeId, &WeightedGraph) -> P,
        O: LinkOracle + ?Sized,
    {
        let mut m = self.pooled_machine(pool);
        self.start(&mut m, make, oracle);
        let res = self.exec(oracle, &mut m, &mut NoCapture);
        let summary = EvalSummary::of(&m);
        pool.machine = Some(m);
        res.map(|()| summary)
    }

    /// [`Simulator::resume`] out of a pool: continues `cp` under
    /// `oracle` with zero per-run setup allocation in steady state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the protocol does not
    /// quiesce within the event budget (events count from the
    /// checkpoint's total).
    pub fn eval_resume<P, O>(
        &self,
        pool: &mut EvalPool<P>,
        cp: &Checkpoint<P>,
        oracle: &mut O,
    ) -> Result<EvalSummary, SimError>
    where
        P: Process + Clone,
        O: LinkOracle + ?Sized,
    {
        debug_assert_eq!(
            cp.fifo_floor.len(),
            2 * self.graph.edge_count(),
            "checkpoint/graph mismatch"
        );
        // Take the pooled machine raw — every field the usual rewind
        // would clear is overwritten from the checkpoint below, and
        // leaving `states` populated lets `clone_from` reuse each
        // element's own buffers instead of cloning into freed slots.
        let mut m = match pool.machine.take() {
            Some(m) => m,
            None => Machine::new(self.core, self.graph, 0),
        };
        m.core
            .ensure_queue(self.core, self.graph.max_weight().get());
        m.states.clone_from(&cp.states);
        m.cost.clone_from(&cp.cost);
        m.core.restore_from(cp);
        // Pooled paths never record traces, but `exec` appends whenever
        // the *simulator* has `trace_cap > 0` — rewind so a pooled
        // machine never carries a previous run's trace (or its dropped
        // counter) across evaluations.
        m.trace = Trace::new(0);
        m.truncated = cp.truncated;
        m.events = cp.events;
        m.outbox.clear();
        m.out_edges.clear();
        m.churn.clone_from(&cp.churn);
        m.rejoin_states.clone_from(&cp.rejoin_states);
        m.timer_floor.clone_from(&cp.timer_floor);
        m.drift_plan.clone_from(&cp.drift_plan);
        m.drift_cursor = cp.drift_cursor;
        m.eff.clone_from(&cp.eff);
        m.node_msg_seq.clone_from(&cp.node_msg_seq);
        m.node_timer_seq.clone_from(&cp.node_timer_seq);
        m.cancelled.clone_from(&cp.cancelled);
        m.timers.clear();
        m.cancels.clear();
        let res = self.exec(oracle, &mut m, &mut NoCapture);
        let summary = EvalSummary::of(&m);
        pool.machine = Some(m);
        res.map(|()| summary)
    }

    /// Takes the pool's machine (or builds one) and rewinds it for a run
    /// on this simulator's graph and core.
    fn pooled_machine<P: Process>(&self, pool: &mut EvalPool<P>) -> Machine<P> {
        let g = self.graph;
        match pool.machine.take() {
            Some(mut m) => {
                m.states.clear();
                m.cost.reset(g.edge_count());
                m.core
                    .reset(self.core, g.edge_count(), g.max_weight().get());
                m.truncated = false;
                m.trace = Trace::new(0);
                m.events = 0;
                m.outbox.clear();
                m.out_edges.clear();
                m.churn.clear();
                m.rejoin_states.clear();
                m.timer_floor.clear();
                m.drift_plan.clear();
                m.drift_cursor = 0;
                m.eff.clear();
                m.node_msg_seq.clear();
                m.node_timer_seq.clear();
                m.cancelled.clear();
                m.timers.clear();
                m.cancels.clear();
                m
            }
            // Pooled paths never record traces: cap 0.
            None => Machine::new(self.core, g, 0),
        }
    }

    /// Time zero: queries churn and drift plans, constructs per-vertex
    /// states (plus a fresh state per scheduled rejoin), schedules the
    /// rejoin events, and runs every [`Process::on_start`]
    /// (crashed-at-zero vertices excepted), dispatching what they send
    /// and arm.
    fn start<P, F, O>(&self, m: &mut Machine<P>, mut make: F, oracle: &mut O)
    where
        P: Process,
        F: FnMut(NodeId, &WeightedGraph) -> P,
        O: LinkOracle + ?Sized,
    {
        let g = self.graph;
        m.states.extend(g.nodes().map(|v| make(v, g)));
        m.node_msg_seq.resize(g.node_count(), 0);
        m.node_timer_seq.resize(g.node_count(), 0);
        m.timer_floor.resize(g.node_count(), 0);
        // Churn and drift plans are fixed before any handler runs, in
        // vertex order, so the oracle's query sequence is deterministic.
        for v in g.nodes() {
            let plan = oracle.churn_plan(v);
            assert!(
                plan.windows(2).all(|w| w[0] < w[1]),
                "churn plan for {v} must be strictly increasing"
            );
            m.churn.push(plan);
        }
        m.drift_plan = oracle.drift_plan();
        // Stable by time: same-instant revisions apply in plan order.
        m.drift_plan.sort_by_key(|&(_, t, _)| t);
        // Fault meters are assigned up front, whether or not the run
        // lives long enough to reach every scheduled toggle.
        m.cost.crashed_nodes = m.churn.iter().filter(|p| !p.is_empty()).count() as u64;
        m.cost.recoveries = m.churn.iter().map(|p| (p.len() / 2) as u64).sum();
        m.cost.weight_revisions = m.drift_plan.len() as u64;
        // Effective weights start from the static table; revisions at
        // time 0 take hold before any on_start runs.
        m.eff.extend(g.edge_ids().map(|e| g.weight(e)));
        m.advance_drift(SimTime::ZERO);
        // Fresh states for every scheduled rejoin — fabricated by the
        // same closure, in vertex order then rejoin order (stored
        // reversed so execution pops the earliest first).
        m.rejoin_states.resize_with(g.node_count(), Vec::new);
        for v in g.nodes() {
            let rejoins = m.churn[v.index()].len() / 2;
            let stash: Vec<P> = (0..rejoins).map(|_| make(v, g)).collect();
            m.rejoin_states[v.index()].extend(stash.into_iter().rev());
        }
        // Rejoin events are pushed before any dispatch, so they hold the
        // lowest queue seqs and win pop-order ties at their instant.
        for v in g.nodes() {
            for i in (1..m.churn[v.index()].len()).step_by(2) {
                let at = m.churn[v.index()][i];
                m.core.push(at, Event::Rejoin { node: v });
            }
        }
        for v in g.nodes() {
            if m.crashed(v, SimTime::ZERO) {
                continue;
            }
            let outbox = std::mem::take(&mut m.outbox);
            let out_edges = std::mem::take(&mut m.out_edges);
            let timers = std::mem::take(&mut m.timers);
            let cancels = std::mem::take(&mut m.cancels);
            let mut ctx = Context::recycled(
                v,
                SimTime::ZERO,
                g,
                outbox,
                out_edges,
                timers,
                cancels,
                m.node_msg_seq[v.index()],
                m.node_timer_seq[v.index()],
            )
            .with_weights(&m.eff);
            m.states[v.index()].on_start(&mut ctx);
            (m.outbox, m.out_edges, m.timers, m.cancels) = ctx.into_parts();
            m.dispatch(g, self.comm_limit, v, SimTime::ZERO, oracle);
            m.dispatch_timers(v, SimTime::ZERO);
        }
    }

    /// The main loop: pop, deliver, dispatch, capture — until quiescence
    /// or truncation. Cancelled timer fires and events addressed to
    /// crashed vertices are consumed silently (no handler, no event
    /// count, no completion-time movement).
    fn exec<P, O, C>(
        &self,
        oracle: &mut O,
        m: &mut Machine<P>,
        capture: &mut C,
    ) -> Result<(), SimError>
    where
        P: Process,
        O: LinkOracle + ?Sized,
        C: Capture<P>,
    {
        let g = self.graph;
        // Queue stats land on the report at every exit below (normal and
        // error), so consumers can detect overflow-heap fallback without
        // reaching into the queue. The window is a workload property
        // (identical across cores) — only the push counter is per-queue.
        let finalize = |m: &mut Machine<P>| {
            m.cost.bucket_window = BucketQueue::capacity_for(g.max_weight().get()) as u64;
            m.cost.overflow_pushes = m.core.queue.overflow_pushes();
        };
        while !m.truncated {
            let Some((now, event)) = m.core.pop() else {
                break;
            };
            // Weight revisions with time ≤ now take hold before the
            // event is handled, so everything at this instant — handler
            // observation, delay clamping, metering — sees them.
            m.advance_drift(now);
            // Route the pop: cancelled timers, stale timers from a
            // pre-rejoin incarnation, and events addressed to a dead
            // vertex vanish here, before any handler runs. `Some(Ok)`
            // is a message delivery, `Some(Err)` a live timer fire,
            // `None` a scheduled rejoin.
            let (node, fire) = match event {
                Event::Msg(d) => (d.to, Some(Ok(d))),
                Event::Timer { node, id } => {
                    if m.cancelled.remove(&(node, id)) {
                        continue;
                    }
                    if id < m.timer_floor[node.index()] {
                        m.cost.dead_events += 1;
                        continue;
                    }
                    (node, Some(Err(id)))
                }
                Event::Rejoin { node } => (node, None),
            };
            if m.crashed(node, now) {
                m.cost.dead_events += 1;
                continue;
            }
            m.events += 1;
            if m.events > self.event_limit {
                finalize(m);
                return Err(SimError::EventLimitExceeded {
                    limit: self.event_limit,
                });
            }
            if fire.is_none() {
                // Rejoin: the vertex restarts with the stashed fresh
                // state, and every timer id armed by the previous
                // incarnation drops behind the floor. Message and timer
                // seqs keep counting — tokens and ids are per vertex,
                // not per incarnation.
                let fresh = m.rejoin_states[node.index()]
                    .pop()
                    .expect("a fresh state was stashed per scheduled rejoin");
                m.states[node.index()] = fresh;
                m.timer_floor[node.index()] = m.node_timer_seq[node.index()];
            }
            let outbox = std::mem::take(&mut m.outbox);
            let out_edges = std::mem::take(&mut m.out_edges);
            let timers = std::mem::take(&mut m.timers);
            let cancels = std::mem::take(&mut m.cancels);
            let mut ctx = Context::recycled(
                node,
                now,
                g,
                outbox,
                out_edges,
                timers,
                cancels,
                m.node_msg_seq[node.index()],
                m.node_timer_seq[node.index()],
            )
            .with_weights(&m.eff);
            match fire {
                Some(Ok(d)) => {
                    // Completion time is the last *delivered message*;
                    // timer fires and rejoins are local and free.
                    m.cost.record_delivery(now, d.class);
                    if self.trace_cap > 0 {
                        m.trace.push(TraceEvent {
                            from: d.from,
                            to: d.to,
                            edge: d.edge,
                            sent: d.sent,
                            delivered: now,
                            class: d.class,
                        });
                    }
                    m.states[node.index()].on_message(d.from, d.msg, &mut ctx);
                }
                Some(Err(id)) => m.states[node.index()].on_timer(TimerId(id), &mut ctx),
                None => m.states[node.index()].on_start(&mut ctx),
            }
            (m.outbox, m.out_edges, m.timers, m.cancels) = ctx.into_parts();
            m.dispatch(g, self.comm_limit, node, now, oracle);
            m.dispatch_timers(node, now);
            capture.after_event(m);
        }
        finalize(m);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::{generators, Cost};

    /// Ping-pong `rounds` times between the endpoints of a single edge.
    #[derive(Clone)]
    struct PingPong {
        rounds: u32,
        received: u32,
    }

    impl Process for PingPong {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.self_id() == NodeId::new(0) && self.rounds > 0 {
                ctx.send(NodeId::new(1), 1);
            }
        }

        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<'_, u32>) {
            self.received += 1;
            if msg < self.rounds {
                ctx.send(from, msg + 1);
            }
        }
    }

    #[test]
    fn ping_pong_costs_add_up() {
        let g = generators::path(2, |_| 5);
        let run = Simulator::new(&g)
            .run(|_, _| PingPong {
                rounds: 4,
                received: 0,
            })
            .unwrap();
        // 4 messages, each of weight 5, each taking exactly 5 ticks.
        assert_eq!(run.cost.messages, 4);
        assert_eq!(run.cost.weighted_comm, Cost::new(20));
        assert_eq!(run.cost.completion, SimTime::new(20));
        assert_eq!(run.states[0].received + run.states[1].received, 4);
    }

    #[test]
    fn eager_delay_shrinks_time_not_cost() {
        let g = generators::path(2, |_| 5);
        let run = Simulator::new(&g)
            .delay(DelayModel::Eager)
            .run(|_, _| PingPong {
                rounds: 4,
                received: 0,
            })
            .unwrap();
        assert_eq!(run.cost.weighted_comm, Cost::new(20)); // cost unchanged
        assert_eq!(run.cost.completion, SimTime::new(4)); // 4 unit hops
    }

    #[test]
    fn uniform_delays_are_reproducible() {
        let g = generators::cycle(8, |i| 1 + i as u64 % 7);
        let run_with = |seed: u64| {
            Simulator::new(&g)
                .delay(DelayModel::Uniform)
                .seed(seed)
                .run(|_, _| PingPong {
                    rounds: 6,
                    received: 0,
                })
                .unwrap()
                .cost
        };
        assert_eq!(run_with(3), run_with(3));
    }

    #[test]
    fn heap_and_bucket_cores_agree() {
        let g = generators::connected_gnp(14, 0.3, generators::WeightDist::Uniform(1, 20), 11);
        let run_on = |kind: CoreKind, seed: u64| {
            let mut sim = Simulator::new(&g);
            sim.core(kind)
                .delay(DelayModel::Uniform)
                .seed(seed)
                .record_trace(1 << 14);
            sim.run(|_, _| PingPong {
                rounds: 8,
                received: 0,
            })
            .unwrap()
        };
        for seed in 0..4 {
            let b = run_on(CoreKind::Bucket, seed);
            let h = run_on(CoreKind::Heap, seed);
            assert_eq!(b.cost, h.cost, "cost diverged at seed {seed}");
            assert_eq!(b.trace.events(), h.trace.events());
        }
    }

    #[test]
    fn cost_report_surfaces_bucket_window_and_overflow() {
        // In-window workload: every core reports the same auto-sized
        // window and a zero overflow count, so full-report differential
        // equality holds.
        let g = generators::path(3, |_| 5);
        let run_on = |kind: CoreKind| {
            let mut sim = Simulator::new(&g);
            sim.core(kind).delay(DelayModel::WorstCase);
            sim.run(|_, _| PingPong {
                rounds: 3,
                received: 0,
            })
            .unwrap()
        };
        let b = run_on(CoreKind::Bucket);
        let h = run_on(CoreKind::Heap);
        assert_eq!(b.cost, h.cost);
        assert_eq!(b.cost.bucket_window, BucketQueue::capacity_for(5) as u64);
        assert_eq!(b.cost.overflow_pushes, 0);

        // Past-window workload (W > MAX_CAPACITY): the bucket core falls
        // back to its overflow heap and says so; the heap core reports
        // zero. The window itself stays a workload property both agree
        // on, and every metered aggregate still matches.
        let big = generators::path(2, |_| 300_000);
        let run_big = |kind: CoreKind| {
            let mut sim = Simulator::new(&big);
            sim.core(kind).delay(DelayModel::WorstCase);
            sim.run(|_, _| PingPong {
                rounds: 2,
                received: 0,
            })
            .unwrap()
        };
        let bb = run_big(CoreKind::Bucket);
        let hb = run_big(CoreKind::Heap);
        assert_eq!(bb.cost.bucket_window, BucketQueue::MAX_CAPACITY as u64);
        assert_eq!(hb.cost.bucket_window, BucketQueue::MAX_CAPACITY as u64);
        assert!(
            bb.cost.overflow_pushes > 0,
            "W past the window cap must hit the overflow heap"
        );
        assert_eq!(hb.cost.overflow_pushes, 0);
        // Equality excludes the scheduler statistic, so the full-report
        // differential contract survives the overflow regime.
        assert_eq!(bb.cost, hb.cost);
    }

    #[test]
    fn event_limit_catches_infinite_protocols() {
        /// Bounces a message forever.
        #[derive(Debug)]
        struct Forever;
        impl Process for Forever {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.self_id() == NodeId::new(0) {
                    ctx.send(NodeId::new(1), ());
                }
            }
            fn on_message(&mut self, from: NodeId, _msg: (), ctx: &mut Context<'_, ()>) {
                ctx.send(from, ());
            }
        }
        let g = generators::path(2, |_| 1);
        let err = Simulator::new(&g)
            .event_limit(1000)
            .run(|_, _| Forever)
            .unwrap_err();
        assert_eq!(err, SimError::EventLimitExceeded { limit: 1000 });
    }

    /// Sends a burst of numbered messages; receiver checks FIFO order.
    struct FifoCheck {
        next_expected: u32,
        violations: u32,
    }

    impl Process for FifoCheck {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.self_id() == NodeId::new(0) {
                for i in 0..50 {
                    ctx.send(NodeId::new(1), i);
                }
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: u32, _ctx: &mut Context<'_, u32>) {
            if msg != self.next_expected {
                self.violations += 1;
            }
            self.next_expected = msg + 1;
        }
    }

    #[test]
    fn fifo_order_is_preserved_under_random_delays() {
        let g = generators::path(2, |_| 100);
        for seed in 0..5 {
            let run = Simulator::new(&g)
                .delay(DelayModel::Uniform)
                .seed(seed)
                .run(|_, _| FifoCheck {
                    next_expected: 0,
                    violations: 0,
                })
                .unwrap();
            assert_eq!(run.states[1].violations, 0, "FIFO violated at seed {seed}");
        }
    }

    #[test]
    fn quiescent_protocol_reports_zero() {
        struct Silent;
        impl Process for Silent {
            type Msg = ();
            fn on_start(&mut self, _ctx: &mut Context<'_, ()>) {}
            fn on_message(&mut self, _f: NodeId, _m: (), _ctx: &mut Context<'_, ()>) {}
        }
        let g = generators::cycle(4, |_| 2);
        let run = Simulator::new(&g).run(|_, _| Silent).unwrap();
        assert_eq!(run.cost.messages, 0);
        assert_eq!(run.cost.completion, SimTime::ZERO);
    }

    #[test]
    fn comm_limit_overshoot_is_at_most_one_message() {
        // Every message has weight 7; budget 20 admits sends at metered
        // cost 0, 7, 14 and rejects the one at 21 — so the recorded cost
        // must land in (20, 20 + 7].
        let g = generators::path(2, |_| 7);
        let run = Simulator::new(&g)
            .comm_limit(20)
            .run(|_, _| PingPong {
                rounds: 100,
                received: 0,
            })
            .unwrap();
        assert!(run.truncated);
        let cost = run.cost.weighted_comm.raw();
        assert!(cost > 20, "budget not exhausted: {cost}");
        assert!(cost <= 20 + 7, "overshoot exceeds one message: {cost}");
        // Every metered message was actually delivered: dispatch-time
        // enforcement never pays for a dropped send.
        assert_eq!(
            run.cost.messages,
            u64::from(run.states[0].received + run.states[1].received)
        );
    }

    #[test]
    fn comm_limit_zero_truncates_after_first_message() {
        let g = generators::path(2, |_| 3);
        let run = Simulator::new(&g)
            .comm_limit(0)
            .run(|_, _| PingPong {
                rounds: 100,
                received: 0,
            })
            .unwrap();
        // The first send is metered (cost 0 is not > 0); the reply is
        // rejected at dispatch.
        assert!(run.truncated);
        assert_eq!(run.cost.messages, 1);
        assert_eq!(run.cost.weighted_comm, Cost::new(3));
    }

    #[test]
    fn slab_slots_are_reused_across_deliveries() {
        // A long chain keeps at most one message in flight, so the slab
        // never grows past one slot no matter how many events run.
        struct Chain;
        impl Process for Chain {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                if ctx.self_id() == NodeId::new(0) {
                    ctx.send(NodeId::new(1), 0);
                }
            }
            fn on_message(&mut self, from: NodeId, hops: u32, ctx: &mut Context<'_, u32>) {
                if hops < 1000 {
                    ctx.send(from, hops + 1);
                }
            }
        }
        let g = generators::path(2, |_| 1);
        let run = Simulator::new(&g).run(|_, _| Chain).unwrap();
        assert_eq!(run.cost.messages, 1001);
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use csp_graph::generators;

    /// Ping-pong with a payload so states evolve observably.
    #[derive(Clone, PartialEq, Eq, Debug)]
    struct Counter {
        rounds: u32,
        received: u32,
    }

    impl Process for Counter {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.self_id() == NodeId::new(0) && self.rounds > 0 {
                ctx.send(NodeId::new(1), 1);
            }
        }
        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<'_, u32>) {
            self.received += 1;
            if msg < self.rounds {
                ctx.send(from, msg + 1);
            }
        }
    }

    fn make(_: NodeId, _: &WeightedGraph) -> Counter {
        Counter {
            rounds: 40,
            received: 0,
        }
    }

    #[test]
    fn resume_reproduces_the_cold_run_exactly() {
        let g = generators::path(2, |_| 9);
        let mut sim = Simulator::new(&g);
        sim.record_trace(1 << 10);
        let cold = sim.run(make).unwrap();

        let mut cps = Vec::new();
        let checkpointed = sim
            .run_with_checkpoints(
                &mut ModelOracle::new(DelayModel::WorstCase, 0),
                make,
                7,
                &mut cps,
            )
            .unwrap();
        assert_eq!(checkpointed.cost, cold.cost);
        assert!(!cps.is_empty(), "expected checkpoints every 7 messages");

        for cp in &cps {
            let resumed = sim
                .resume(cp, &mut ModelOracle::new(DelayModel::WorstCase, 0))
                .unwrap();
            assert_eq!(resumed.cost, cold.cost, "at checkpoint {}", cp.messages());
            assert_eq!(resumed.trace.events(), cold.trace.events());
            assert_eq!(resumed.states, cold.states);
        }
    }

    #[test]
    fn resume_works_across_core_kinds() {
        let g = generators::cycle(6, |i| 1 + i as u64);
        let mut cps: Vec<Checkpoint<Counter>> = Vec::new();
        let bucket_sim = Simulator::new(&g);
        bucket_sim
            .run_with_checkpoints(
                &mut ModelOracle::new(DelayModel::WorstCase, 0),
                make,
                5,
                &mut cps,
            )
            .unwrap();
        let cold = Simulator::new(&g).run(make).unwrap();
        let mut heap_sim = Simulator::new(&g);
        heap_sim.core(CoreKind::Heap);
        for cp in &cps {
            let resumed = heap_sim
                .resume(cp, &mut ModelOracle::new(DelayModel::WorstCase, 0))
                .unwrap();
            assert_eq!(resumed.cost, cold.cost);
        }
    }

    #[test]
    fn pooled_eval_matches_owned_runs() {
        let g = generators::connected_gnp(10, 0.4, generators::WeightDist::Uniform(1, 12), 3);
        let mut sim = Simulator::new(&g);
        sim.delay(DelayModel::Uniform);
        let mut pool = EvalPool::new();
        for seed in 0..6 {
            sim.seed(seed);
            let owned = sim.run(make).unwrap();
            let pooled = sim
                .eval(
                    &mut pool,
                    &mut ModelOracle::new(DelayModel::Uniform, seed),
                    make,
                )
                .unwrap();
            assert_eq!(pooled.completion, owned.cost.completion);
            assert_eq!(pooled.messages, owned.cost.messages);
            assert_eq!(pooled.weighted_comm, owned.cost.weighted_comm);
            assert!(!pooled.truncated);
        }
    }

    #[test]
    fn pooled_resume_matches_cold_resume() {
        let g = generators::path(2, |_| 9);
        let sim = Simulator::new(&g);
        let mut cps = Vec::new();
        sim.run_with_checkpoints(
            &mut ModelOracle::new(DelayModel::WorstCase, 0),
            make,
            6,
            &mut cps,
        )
        .unwrap();
        let mut pool = EvalPool::new();
        for cp in &cps {
            let cold = sim
                .resume(cp, &mut ModelOracle::new(DelayModel::WorstCase, 0))
                .unwrap();
            let pooled = sim
                .eval_resume(
                    &mut pool,
                    cp,
                    &mut ModelOracle::new(DelayModel::WorstCase, 0),
                )
                .unwrap();
            assert_eq!(pooled.completion, cold.cost.completion);
            assert_eq!(pooled.messages, cold.cost.messages);
            assert!(pooled.events >= cp.events());
        }
    }

    #[test]
    fn pool_survives_graph_and_core_changes() {
        let g1 = generators::path(3, |_| 4);
        let g2 = generators::cycle(7, |_| 90);
        let mut pool = EvalPool::new();
        let o = || ModelOracle::new(DelayModel::WorstCase, 0);
        let a = Simulator::new(&g1).eval(&mut pool, &mut o(), make).unwrap();
        let mut sim2 = Simulator::new(&g2);
        sim2.core(CoreKind::Heap);
        let b = sim2.eval(&mut pool, &mut o(), make).unwrap();
        let c = Simulator::new(&g2).eval(&mut pool, &mut o(), make).unwrap();
        assert_eq!(
            a,
            Simulator::new(&g1).eval(&mut pool, &mut o(), make).unwrap()
        );
        assert_eq!(b, c);
    }

    #[test]
    fn pool_resumes_cleanly_across_graph_sizes() {
        // Regression: one pool shared by evaluations over graphs of very
        // different sizes (state count, edge count, bucket window) in
        // every interleaving of `eval` and `eval_resume` — the shape a
        // long-running service's per-worker pools see, as opposed to the
        // fixed-graph reuse inside one adversary search.
        let g_small = generators::path(3, |_| 4); // 2 edges, W = 4
        let g_big = generators::cycle(40, |_| 5000); // 40 edges, W = 5000
        let o = || ModelOracle::new(DelayModel::WorstCase, 0);

        let small_sim = Simulator::new(&g_small);
        let mut big_sim = Simulator::new(&g_big);
        big_sim.record_trace(1 << 10); // trace-recording sim sharing the pool
        let mut cps_small: Vec<Checkpoint<Counter>> = Vec::new();
        let mut cps_big: Vec<Checkpoint<Counter>> = Vec::new();
        let cold_small = small_sim
            .run_with_checkpoints(&mut o(), make, 7, &mut cps_small)
            .unwrap();
        let cold_big = big_sim
            .run_with_checkpoints(&mut o(), make, 11, &mut cps_big)
            .unwrap();
        assert!(!cps_small.is_empty() && !cps_big.is_empty());

        let mut pool = EvalPool::new();
        for round in 0..3 {
            // Alternate directions between rounds so both small-after-big
            // and big-after-small restores happen.
            type Leg<'a, 'g> = (
                &'a Simulator<'g>,
                &'a Vec<Checkpoint<Counter>>,
                &'a Run<Counter>,
            );
            let order: [Leg; 2] = if round % 2 == 0 {
                [
                    (&small_sim, &cps_small, &cold_small),
                    (&big_sim, &cps_big, &cold_big),
                ]
            } else {
                [
                    (&big_sim, &cps_big, &cold_big),
                    (&small_sim, &cps_small, &cold_small),
                ]
            };
            for (sim, cps, cold) in order {
                for cp in cps.iter() {
                    let s = sim.eval_resume(&mut pool, cp, &mut o()).unwrap();
                    assert_eq!(s.completion, cold.cost.completion, "round {round}");
                    assert_eq!(s.messages, cold.cost.messages, "round {round}");
                    assert_eq!(s.weighted_comm, cold.cost.weighted_comm, "round {round}");
                }
                let s = sim.eval(&mut pool, &mut o(), make).unwrap();
                assert_eq!(s.completion, cold.cost.completion, "round {round}");
                assert_eq!(s.messages, cold.cost.messages, "round {round}");
            }
        }

        // Cross-core restores of foreign-size checkpoints, same pool.
        let mut heap_big = Simulator::new(&g_big);
        heap_big.core(CoreKind::Heap);
        let s = heap_big
            .eval_resume(&mut pool, &cps_big[0], &mut o())
            .unwrap();
        assert_eq!(s.completion, cold_big.cost.completion);
        let s = small_sim
            .eval_resume(&mut pool, &cps_small[0], &mut o())
            .unwrap();
        assert_eq!(s.completion, cold_small.cost.completion);
    }

    #[test]
    fn checkpoint_marks_follow_message_count() {
        let g = generators::path(2, |_| 3);
        let sim = Simulator::new(&g);
        let mut cps: Vec<Checkpoint<Counter>> = Vec::new();
        sim.run_with_checkpoints(
            &mut ModelOracle::new(DelayModel::WorstCase, 0),
            make,
            10,
            &mut cps,
        )
        .unwrap();
        // 40 messages at one per event: marks at 10, 20, 30, 40.
        let marks: Vec<u64> = cps.iter().map(|c| c.messages()).collect();
        assert_eq!(marks, vec![10, 20, 30, 40]);
        assert!(cps.windows(2).all(|w| w[0].events() < w[1].events()));
        assert!(cps[0].completion() > SimTime::ZERO);
    }
}

#[cfg(test)]
mod churn_tests {
    use super::*;
    use crate::delay::ChurnOracle;
    use csp_graph::generators;

    /// Greets the peer once per incarnation: every `on_start` sends one
    /// message to the other endpoint of a 2-path.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Hello {
        received: u32,
    }

    impl Process for Hello {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            let peer = NodeId::new(1 - ctx.self_id().index());
            ctx.send(peer, 1);
        }
        fn on_message(&mut self, _from: NodeId, _msg: u32, _ctx: &mut Context<'_, u32>) {
            self.received += 1;
        }
    }

    fn hello_oracle(plan: Vec<SimTime>) -> ChurnOracle<ModelOracle> {
        ChurnOracle::new(
            ModelOracle::new(DelayModel::WorstCase, 0),
            vec![(NodeId::new(1), plan)],
            Vec::new(),
        )
    }

    #[test]
    fn rejoin_restarts_with_fresh_state() {
        let g = generators::path(2, |_| 5);
        for kind in [CoreKind::Bucket, CoreKind::Heap] {
            // Vertex 1 crashes at 3 and rejoins at 10. Its own greeting
            // (sent at 0) lands at vertex 0; vertex 0's greeting arrives
            // at 5 into the dead window; the rejoined incarnation greets
            // again at 10, landing at 15.
            let mut sim = Simulator::new(&g);
            sim.core(kind);
            let run = sim
                .run_with_oracle(
                    &mut hello_oracle(vec![SimTime::new(3), SimTime::new(10)]),
                    |_, _| Hello { received: 0 },
                )
                .unwrap();
            assert_eq!(run.states[0].received, 2, "original + rejoin greeting");
            assert_eq!(run.states[1].received, 0, "fresh state saw nothing");
            assert_eq!(run.cost.messages, 3);
            assert_eq!(run.cost.weighted_comm, Cost::new(15));
            assert_eq!(run.cost.completion, SimTime::new(15));
            assert_eq!(run.cost.dead_events, 1);
            assert_eq!(run.cost.crashed_nodes, 1);
            assert_eq!(run.cost.recoveries, 1);
            assert_eq!(run.cost.weight_revisions, 0);
        }
    }

    #[test]
    fn crash_rejoin_recrash_sequences_execute() {
        let g = generators::path(2, |_| 5);
        // Crash at 2, rejoin at 6, crash again at 9: the rejoined
        // incarnation still gets its greeting out (arrives at 11), and
        // vertex 0's greeting dies in the first dead window.
        let run = Simulator::new(&g)
            .run_with_oracle(
                &mut hello_oracle(vec![SimTime::new(2), SimTime::new(6), SimTime::new(9)]),
                |_, _| Hello { received: 0 },
            )
            .unwrap();
        assert_eq!(run.states[0].received, 2);
        assert_eq!(run.cost.messages, 3);
        assert_eq!(run.cost.dead_events, 1);
        assert_eq!(run.cost.crashed_nodes, 1);
        assert_eq!(run.cost.recoveries, 1);
        assert_eq!(run.cost.completion, SimTime::new(11));
    }

    /// Arms one long timer per incarnation and counts the fires.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Alarm {
        fired: u32,
    }

    impl Process for Alarm {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            ctx.set_timer(100);
        }
        fn on_message(&mut self, _f: NodeId, _m: (), _ctx: &mut Context<'_, ()>) {}
        fn on_timer(&mut self, _id: TimerId, _ctx: &mut Context<'_, ()>) {
            self.fired += 1;
        }
    }

    #[test]
    fn stale_timers_die_behind_the_floor() {
        let g = generators::path(2, |_| 1);
        // Vertex 0 crashes at 2 and rejoins at 4: the incarnation-0
        // timer (due at 100) is stale when it fires and must be
        // consumed as a dead event, not delivered to the fresh state.
        let mut oracle = ChurnOracle::new(
            ModelOracle::new(DelayModel::WorstCase, 0),
            vec![(NodeId::new(0), vec![SimTime::new(2), SimTime::new(4)])],
            Vec::new(),
        );
        let run = Simulator::new(&g)
            .run_with_oracle(&mut oracle, |_, _| Alarm { fired: 0 })
            .unwrap();
        assert_eq!(run.states[0].fired, 1, "only the fresh incarnation's timer");
        assert_eq!(run.states[1].fired, 1);
        assert_eq!(run.cost.dead_events, 1, "the stale timer died at the floor");
        // Timer fires never move completion.
        assert_eq!(run.cost.completion, SimTime::ZERO);
    }

    /// Same shape as the main suite's ping-pong (private to its module).
    #[derive(Clone)]
    struct PingPong {
        rounds: u32,
        received: u32,
    }

    impl Process for PingPong {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.self_id() == NodeId::new(0) && self.rounds > 0 {
                ctx.send(NodeId::new(1), 1);
            }
        }
        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<'_, u32>) {
            self.received += 1;
            if msg < self.rounds {
                ctx.send(from, msg + 1);
            }
        }
    }

    #[test]
    fn drift_moves_metering_and_delays_from_its_instant() {
        let g = generators::path(2, |_| 5);
        let oracle = || {
            ChurnOracle::new(
                ModelOracle::new(DelayModel::WorstCase, 0),
                Vec::new(),
                vec![(EdgeId::new(0), SimTime::new(3), Weight::new(2))],
            )
        };
        for kind in [CoreKind::Bucket, CoreKind::Heap] {
            // Ping-pong of 4 messages: the first is priced and delayed
            // at weight 5 (sent at 0, before the revision); the
            // remaining three are sent at 5, 7 and 9 under weight 2.
            let mut sim = Simulator::new(&g);
            sim.core(kind);
            let run = sim
                .run_with_oracle(&mut oracle(), |_, _| PingPong {
                    rounds: 4,
                    received: 0,
                })
                .unwrap();
            assert_eq!(run.cost.messages, 4);
            assert_eq!(run.cost.weighted_comm, Cost::new(5 + 2 + 2 + 2));
            assert_eq!(run.cost.completion, SimTime::new(11));
            assert_eq!(run.cost.weight_revisions, 1);
            assert_eq!(run.cost.recoveries, 0);
        }
    }

    #[test]
    fn checkpoint_resume_carries_churn_state() {
        let g = generators::path(2, |_| 5);
        let oracle = || {
            ChurnOracle::new(
                ModelOracle::new(DelayModel::WorstCase, 0),
                vec![(NodeId::new(1), vec![SimTime::new(3), SimTime::new(10)])],
                vec![(EdgeId::new(0), SimTime::new(12), Weight::new(2))],
            )
        };
        let sim = Simulator::new(&g);
        let cold = sim
            .run_with_oracle(&mut oracle(), |_, _| Hello { received: 0 })
            .unwrap();
        let mut cps = Vec::new();
        sim.run_with_checkpoints(&mut oracle(), |_, _| Hello { received: 0 }, 1, &mut cps)
            .unwrap();
        assert!(!cps.is_empty());
        for cp in &cps {
            // The resuming oracle is never asked about churn or drift —
            // an oracle with *no* plans must still reproduce the run.
            let resumed = sim
                .resume(cp, &mut ModelOracle::new(DelayModel::WorstCase, 0))
                .unwrap();
            assert_eq!(resumed.cost, cold.cost, "at checkpoint {}", cp.messages());
            assert_eq!(resumed.states, cold.states);
        }
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::process::{Context, Process};
    use csp_graph::generators;
    use csp_graph::NodeId;

    struct Chain {
        last: bool,
    }

    impl Process for Chain {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.self_id() == NodeId::new(0) {
                ctx.send(NodeId::new(1), 0);
            }
        }
        fn on_message(&mut self, _from: NodeId, hops: u32, ctx: &mut Context<'_, u32>) {
            let me = ctx.self_id().index();
            if me + 1 < ctx.node_count() {
                ctx.send(NodeId::new(me + 1), hops + 1);
            } else {
                self.last = true;
            }
        }
    }

    #[test]
    fn trace_records_every_delivery_in_order() {
        let g = generators::path(5, |i| i as u64 + 1);
        let run = Simulator::new(&g)
            .record_trace(64)
            .run(|_, _| Chain { last: false })
            .unwrap();
        assert_eq!(run.trace.len(), 4);
        assert!(run.trace.is_fifo());
        // Latencies equal the edge weights under worst-case delays.
        for (i, e) in run.trace.events().iter().enumerate() {
            assert_eq!(e.latency(), i as u64 + 1);
            assert_eq!(e.from, NodeId::new(i));
            assert_eq!(e.to, NodeId::new(i + 1));
        }
        assert!(run.states[4].last);
    }

    #[test]
    fn trace_cap_is_honored() {
        let g = generators::path(8, |_| 1);
        let run = Simulator::new(&g)
            .record_trace(3)
            .run(|_, _| Chain { last: false })
            .unwrap();
        assert_eq!(run.trace.len(), 3);
        assert_eq!(run.trace.dropped(), 4);
    }

    #[test]
    fn trace_disabled_by_default() {
        let g = generators::path(4, |_| 1);
        let run = Simulator::new(&g)
            .run(|_, _| Chain { last: false })
            .unwrap();
        assert!(run.trace.is_empty());
    }
}
