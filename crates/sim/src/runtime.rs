//! The event-driven asynchronous runtime.

use crate::cost::{CostClass, CostReport};
use crate::delay::DelayModel;
use crate::process::{Context, Process};
use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent};
use csp_graph::{NodeId, WeightedGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// Errors terminating a simulation abnormally.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The event budget was exhausted — the protocol is probably not
    /// terminating (or the budget was set too low for the workload).
    EventLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SimError::EventLimitExceeded { limit } => {
                write!(
                    f,
                    "event limit of {limit} exceeded; protocol may not terminate"
                )
            }
        }
    }
}

impl Error for SimError {}

/// The outcome of a completed (quiescent) run.
#[derive(Debug)]
pub struct Run<P> {
    /// Final per-vertex protocol states, indexed by vertex.
    pub states: Vec<P>,
    /// Metered costs of the whole run.
    pub cost: CostReport,
    /// Whether the run was cut short by [`Simulator::comm_limit`] —
    /// remaining messages were dropped undelivered.
    pub truncated: bool,
    /// Message trace (empty unless [`Simulator::record_trace`] was set).
    pub trace: Trace,
}

/// Configurable asynchronous network simulator (non-consuming builder).
///
/// Executes a [`Process`] per vertex with:
///
/// * per-message delays drawn from the configured [`DelayModel`] (default
///   [`DelayModel::WorstCase`], matching the paper's time bounds),
/// * **per-directed-edge FIFO** delivery (a later send on the same channel
///   never overtakes an earlier one — the standard reliable-link
///   assumption, which protocols like GHS require),
/// * deterministic tie-breaking: simultaneous deliveries happen in send
///   order,
/// * weighted cost metering of every send.
///
/// The run ends at *quiescence* — no messages in flight. Protocols in the
/// paper's model (diffusing computations) always reach it; a configurable
/// event budget converts runaway executions into [`SimError`].
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g WeightedGraph,
    delay: DelayModel,
    seed: u64,
    event_limit: u64,
    comm_limit: Option<u128>,
    trace_cap: usize,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator for `graph` with worst-case delays, seed 0 and
    /// a 100-million-event budget.
    pub fn new(graph: &'g WeightedGraph) -> Self {
        Simulator {
            graph,
            delay: DelayModel::WorstCase,
            seed: 0,
            event_limit: 100_000_000,
            comm_limit: None,
            trace_cap: 0,
        }
    }

    /// Sets the delay model.
    pub fn delay(&mut self, delay: DelayModel) -> &mut Self {
        self.delay = delay;
        self
    }

    /// Sets the seed for randomized delay models.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the event budget.
    pub fn event_limit(&mut self, limit: u64) -> &mut Self {
        self.event_limit = limit;
        self
    }

    /// Records up to `cap` delivered messages into [`Run::trace`].
    pub fn record_trace(&mut self, cap: usize) -> &mut Self {
        self.trace_cap = cap;
        self
    }

    /// Caps the weighted communication: once the metered cost exceeds
    /// `limit`, delivery stops and the run returns with
    /// [`Run::truncated`] set. This models the root *suspending* a
    /// sub-protocol in the hybrid algorithms (Sections 7.2, 8.2, 9.3):
    /// the wasted work of a suspended attempt is bounded by the budget.
    pub fn comm_limit(&mut self, limit: u128) -> &mut Self {
        self.comm_limit = Some(limit);
        self
    }

    /// Runs `make(v, graph)`-constructed processes to quiescence.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the protocol does not
    /// quiesce within the event budget.
    pub fn run<P, F>(&self, mut make: F) -> Result<Run<P>, SimError>
    where
        P: Process,
        F: FnMut(NodeId, &WeightedGraph) -> P,
    {
        let g = self.graph;
        let n = g.node_count();
        let mut states: Vec<P> = g.nodes().map(|v| make(v, g)).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut cost = CostReport::new(g.edge_count());

        // Min-heap of (time, seq) -> delivery.
        struct Delivery<M> {
            to: NodeId,
            from: NodeId,
            msg: M,
            sent: SimTime,
            class: CostClass,
        }
        let mut queue: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
        let mut payloads: std::collections::HashMap<u64, Delivery<P::Msg>> =
            std::collections::HashMap::new();
        let mut seq: u64 = 0;
        // FIFO floor per directed edge: key = from * n + to.
        let mut fifo_floor: std::collections::HashMap<usize, SimTime> =
            std::collections::HashMap::new();

        let dispatch = |outbox: Vec<(NodeId, P::Msg, CostClass)>,
                        from: NodeId,
                        now: SimTime,
                        queue: &mut BinaryHeap<Reverse<(SimTime, u64)>>,
                        payloads: &mut std::collections::HashMap<u64, Delivery<P::Msg>>,
                        fifo_floor: &mut std::collections::HashMap<usize, SimTime>,
                        seq: &mut u64,
                        cost: &mut CostReport,
                        rng: &mut StdRng| {
            for (to, msg, class) in outbox {
                let eid = g
                    .edge_between(from, to)
                    .expect("context validated the neighbor");
                let w = g.weight(eid);
                cost.record_send(eid, w, class);
                let mut arrival = now + self.delay.sample(w, rng);
                let key = from.index() * n + to.index();
                if let Some(&floor) = fifo_floor.get(&key) {
                    arrival = arrival.max(floor);
                }
                fifo_floor.insert(key, arrival);
                queue.push(Reverse((arrival, *seq)));
                payloads.insert(
                    *seq,
                    Delivery {
                        to,
                        from,
                        msg,
                        sent: now,
                        class,
                    },
                );
                *seq += 1;
            }
        };

        // Time zero: start every vertex.
        for v in g.nodes() {
            let mut ctx = Context::new(v, SimTime::ZERO, g);
            states[v.index()].on_start(&mut ctx);
            dispatch(
                ctx.take_outbox(),
                v,
                SimTime::ZERO,
                &mut queue,
                &mut payloads,
                &mut fifo_floor,
                &mut seq,
                &mut cost,
                &mut rng,
            );
        }

        let mut events: u64 = 0;
        let mut truncated = false;
        let mut trace = Trace::new(self.trace_cap);
        while let Some(Reverse((now, id))) = queue.pop() {
            events += 1;
            if events > self.event_limit {
                return Err(SimError::EventLimitExceeded {
                    limit: self.event_limit,
                });
            }
            if self
                .comm_limit
                .is_some_and(|lim| cost.weighted_comm.raw() > lim)
            {
                truncated = true;
                break;
            }
            let Delivery {
                to,
                from,
                msg,
                sent,
                class,
            } = payloads.remove(&id).expect("payload for event");
            cost.completion = cost.completion.max(now);
            if self.trace_cap > 0 {
                let eid = g.edge_between(from, to).expect("delivery edge exists");
                trace.push(TraceEvent {
                    from,
                    to,
                    edge: eid,
                    sent,
                    delivered: now,
                    class,
                });
            }
            let mut ctx = Context::new(to, now, g);
            states[to.index()].on_message(from, msg, &mut ctx);
            dispatch(
                ctx.take_outbox(),
                to,
                now,
                &mut queue,
                &mut payloads,
                &mut fifo_floor,
                &mut seq,
                &mut cost,
                &mut rng,
            );
        }

        Ok(Run {
            states,
            cost,
            truncated,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::{generators, Cost};

    /// Ping-pong `rounds` times between the endpoints of a single edge.
    struct PingPong {
        rounds: u32,
        received: u32,
    }

    impl Process for PingPong {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.self_id() == NodeId::new(0) && self.rounds > 0 {
                ctx.send(NodeId::new(1), 1);
            }
        }

        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<'_, u32>) {
            self.received += 1;
            if msg < self.rounds {
                ctx.send(from, msg + 1);
            }
        }
    }

    #[test]
    fn ping_pong_costs_add_up() {
        let g = generators::path(2, |_| 5);
        let run = Simulator::new(&g)
            .run(|_, _| PingPong {
                rounds: 4,
                received: 0,
            })
            .unwrap();
        // 4 messages, each of weight 5, each taking exactly 5 ticks.
        assert_eq!(run.cost.messages, 4);
        assert_eq!(run.cost.weighted_comm, Cost::new(20));
        assert_eq!(run.cost.completion, SimTime::new(20));
        assert_eq!(run.states[0].received + run.states[1].received, 4);
    }

    #[test]
    fn eager_delay_shrinks_time_not_cost() {
        let g = generators::path(2, |_| 5);
        let run = Simulator::new(&g)
            .delay(DelayModel::Eager)
            .run(|_, _| PingPong {
                rounds: 4,
                received: 0,
            })
            .unwrap();
        assert_eq!(run.cost.weighted_comm, Cost::new(20)); // cost unchanged
        assert_eq!(run.cost.completion, SimTime::new(4)); // 4 unit hops
    }

    #[test]
    fn uniform_delays_are_reproducible() {
        let g = generators::cycle(8, |i| 1 + i as u64 % 7);
        let run_with = |seed: u64| {
            Simulator::new(&g)
                .delay(DelayModel::Uniform)
                .seed(seed)
                .run(|_, _| PingPong {
                    rounds: 6,
                    received: 0,
                })
                .unwrap()
                .cost
        };
        assert_eq!(run_with(3), run_with(3));
    }

    #[test]
    fn event_limit_catches_infinite_protocols() {
        /// Bounces a message forever.
        #[derive(Debug)]
        struct Forever;
        impl Process for Forever {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.self_id() == NodeId::new(0) {
                    ctx.send(NodeId::new(1), ());
                }
            }
            fn on_message(&mut self, from: NodeId, _msg: (), ctx: &mut Context<'_, ()>) {
                ctx.send(from, ());
            }
        }
        let g = generators::path(2, |_| 1);
        let err = Simulator::new(&g)
            .event_limit(1000)
            .run(|_, _| Forever)
            .unwrap_err();
        assert_eq!(err, SimError::EventLimitExceeded { limit: 1000 });
    }

    /// Sends a burst of numbered messages; receiver checks FIFO order.
    struct FifoCheck {
        next_expected: u32,
        violations: u32,
    }

    impl Process for FifoCheck {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.self_id() == NodeId::new(0) {
                for i in 0..50 {
                    ctx.send(NodeId::new(1), i);
                }
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: u32, _ctx: &mut Context<'_, u32>) {
            if msg != self.next_expected {
                self.violations += 1;
            }
            self.next_expected = msg + 1;
        }
    }

    #[test]
    fn fifo_order_is_preserved_under_random_delays() {
        let g = generators::path(2, |_| 100);
        for seed in 0..5 {
            let run = Simulator::new(&g)
                .delay(DelayModel::Uniform)
                .seed(seed)
                .run(|_, _| FifoCheck {
                    next_expected: 0,
                    violations: 0,
                })
                .unwrap();
            assert_eq!(run.states[1].violations, 0, "FIFO violated at seed {seed}");
        }
    }

    #[test]
    fn quiescent_protocol_reports_zero() {
        struct Silent;
        impl Process for Silent {
            type Msg = ();
            fn on_start(&mut self, _ctx: &mut Context<'_, ()>) {}
            fn on_message(&mut self, _f: NodeId, _m: (), _ctx: &mut Context<'_, ()>) {}
        }
        let g = generators::cycle(4, |_| 2);
        let run = Simulator::new(&g).run(|_, _| Silent).unwrap();
        assert_eq!(run.cost.messages, 0);
        assert_eq!(run.cost.completion, SimTime::ZERO);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::process::{Context, Process};
    use csp_graph::generators;
    use csp_graph::NodeId;

    struct Chain {
        last: bool,
    }

    impl Process for Chain {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.self_id() == NodeId::new(0) {
                ctx.send(NodeId::new(1), 0);
            }
        }
        fn on_message(&mut self, _from: NodeId, hops: u32, ctx: &mut Context<'_, u32>) {
            let me = ctx.self_id().index();
            if me + 1 < ctx.node_count() {
                ctx.send(NodeId::new(me + 1), hops + 1);
            } else {
                self.last = true;
            }
        }
    }

    #[test]
    fn trace_records_every_delivery_in_order() {
        let g = generators::path(5, |i| i as u64 + 1);
        let run = Simulator::new(&g)
            .record_trace(64)
            .run(|_, _| Chain { last: false })
            .unwrap();
        assert_eq!(run.trace.len(), 4);
        assert!(run.trace.is_fifo());
        // Latencies equal the edge weights under worst-case delays.
        for (i, e) in run.trace.events().iter().enumerate() {
            assert_eq!(e.latency(), i as u64 + 1);
            assert_eq!(e.from, NodeId::new(i));
            assert_eq!(e.to, NodeId::new(i + 1));
        }
        assert!(run.states[4].last);
    }

    #[test]
    fn trace_cap_is_honored() {
        let g = generators::path(8, |_| 1);
        let run = Simulator::new(&g)
            .record_trace(3)
            .run(|_, _| Chain { last: false })
            .unwrap();
        assert_eq!(run.trace.len(), 3);
        assert_eq!(run.trace.dropped(), 4);
    }

    #[test]
    fn trace_disabled_by_default() {
        let g = generators::path(4, |_| 1);
        let run = Simulator::new(&g)
            .run(|_, _| Chain { last: false })
            .unwrap();
        assert!(run.trace.is_empty());
    }
}
