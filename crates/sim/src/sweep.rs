//! Parallel sweep driver: fan a closure over (graph × seed × delay) grids.
//!
//! Experiments in this workspace — the paper-bound checks, the scale
//! suite, the benchmark harness — all share one shape: run the same
//! protocol over a grid of graphs, seeds and delay models, and collect
//! one [`CostReport`] per grid point. [`SweepGrid`] names that shape, and
//! [`par_map`] executes it across threads with `std::thread::scope` (no
//! external dependencies).
//!
//! Every grid point is an independent [`Simulator`](crate::Simulator) run
//! with its own seed, so parallel and sequential execution produce
//! *identical* per-run reports; `threads(1)` is only a scheduling choice,
//! never a semantic one.
//!
//! # Example
//!
//! ```
//! use csp_graph::generators;
//! use csp_sim::{DelayModel, SweepGrid, Simulator, Context, Process};
//! use csp_graph::NodeId;
//!
//! struct Flood { seen: bool }
//! impl Process for Flood {
//!     type Msg = ();
//!     fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
//!         if ctx.self_id() == NodeId::new(0) { self.seen = true; ctx.send_all(()); }
//!     }
//!     fn on_message(&mut self, _f: NodeId, _m: (), ctx: &mut Context<'_, ()>) {
//!         if !self.seen { self.seen = true; ctx.send_all(()); }
//!     }
//! }
//!
//! let ring = generators::cycle(8, |_| 2);
//! let runs = SweepGrid::new()
//!     .graph("ring", &ring)
//!     .seeds(0..4)
//!     .delay(DelayModel::Uniform)
//!     .run(|pt| {
//!         Simulator::new(pt.graph)
//!             .delay(pt.delay)
//!             .seed(pt.seed)
//!             .run(|_, _| Flood { seen: false })
//!             .unwrap()
//!             .cost
//!     });
//! assert_eq!(runs.len(), 4);
//! ```

use crate::cost::CostReport;
use crate::delay::DelayModel;
use crate::time::SimTime;
use csp_graph::{Cost, WeightedGraph};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested worker-thread count against the machine:
/// `0` means "auto" (the available parallelism), and any explicit
/// request is capped at the available parallelism — asking for 64
/// workers on a 8-way host gets 8, never 64 idle-fighting threads.
///
/// Both this module's drivers and `csp-adversary`'s search use this, so
/// `threads: 0` means the same thing everywhere.
pub fn effective_threads(requested: usize) -> usize {
    let avail = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    if requested == 0 {
        avail
    } else {
        requested.min(avail)
    }
}

/// Applies `f` to every item on a pool of scoped threads, preserving
/// input order in the output.
///
/// Items are claimed dynamically off a shared atomic cursor, so uneven
/// per-item runtimes balance automatically. Workers are named
/// `csp-worker-{i}`; a panic in `f` is reported with the index of the
/// item being processed and then propagated to the caller after the
/// scope joins. `threads` goes through
/// [`effective_threads`] (`0` = auto, capped at the machine) and is then
/// clamped to `1..=items.len()`; with one thread this degenerates to a
/// plain sequential map with no thread spawned.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, threads, || (), move |(), item| f(item))
}

/// [`par_map`] with per-worker scratch state: each worker thread calls
/// `init` once and threads the resulting state through every item it
/// claims — the hook pooled evaluators (e.g.
/// [`EvalPool`](crate::EvalPool)) need to stay allocation-free across a
/// fan-out. Results are still returned in input order, and with one
/// effective thread the single state makes this a sequential fold.
pub fn par_map_with<T, S, R, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let threads = effective_threads(threads).clamp(1, items.len().max(1));
    if threads == 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let cursor = AtomicUsize::new(0);
    // One slot per worker recording the item it is currently processing,
    // so a propagated panic can say *which* grid point blew up.
    let in_flight: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(usize::MAX)).collect();
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let slot = &in_flight[w];
                let init = &init;
                let f = &f;
                let cursor = &cursor;
                std::thread::Builder::new()
                    .name(format!("csp-worker-{w}"))
                    .spawn_scoped(scope, move || {
                        let mut state = init();
                        let mut done = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else {
                                return done;
                            };
                            slot.store(i, Ordering::Relaxed);
                            done.push((i, f(&mut state, item)));
                        }
                    })
                    .expect("spawning a scoped worker thread cannot fail")
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(w, h)| match h.join() {
                Ok(bucket) => bucket,
                Err(payload) => {
                    let item = in_flight[w].load(Ordering::Relaxed);
                    eprintln!("csp-worker-{w} panicked while processing item {item}");
                    std::panic::resume_unwind(payload)
                }
            })
            .collect()
    });
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    for (i, r) in buckets.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("cursor covers every index exactly once"))
        .collect()
}

/// One grid point handed to the sweep closure.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint<'g> {
    /// Index of the graph in declaration order.
    pub graph_index: usize,
    /// The label given to [`SweepGrid::graph`].
    pub graph_label: &'g str,
    /// The graph itself.
    pub graph: &'g WeightedGraph,
    /// The seed for this run.
    pub seed: u64,
    /// The delay model for this run.
    pub delay: DelayModel,
}

/// The closure's [`CostReport`] paired with the grid point it came from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepRun {
    /// Index of the graph in declaration order.
    pub graph_index: usize,
    /// The label given to [`SweepGrid::graph`].
    pub graph_label: String,
    /// The seed of this run.
    pub seed: u64,
    /// The delay model of this run.
    pub delay: DelayModel,
    /// The metered cost the closure returned.
    pub cost: CostReport,
}

/// Builder for a (graph × seed × delay-model) experiment grid.
///
/// Points are enumerated graphs-outermost, then seeds, then delay models
/// — the declaration order of each axis is preserved, and the result
/// vector of [`SweepGrid::run`] follows the same order regardless of how
/// many threads executed it.
#[derive(Clone, Debug)]
pub struct SweepGrid<'g> {
    graphs: Vec<(String, &'g WeightedGraph)>,
    seeds: Vec<u64>,
    delays: Vec<DelayModel>,
    threads: Option<usize>,
}

impl Default for SweepGrid<'_> {
    fn default() -> Self {
        SweepGrid::new()
    }
}

impl<'g> SweepGrid<'g> {
    /// An empty grid with the default delay model and the single seed 0.
    pub fn new() -> Self {
        SweepGrid {
            graphs: Vec::new(),
            seeds: vec![0],
            delays: vec![DelayModel::default()],
            threads: None,
        }
    }
    /// Adds one labelled graph to the grid.
    pub fn graph(mut self, label: impl Into<String>, g: &'g WeightedGraph) -> Self {
        self.graphs.push((label.into(), g));
        self
    }

    /// Replaces the seed axis (default: the single seed 0).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Replaces the delay axis with a single model (default:
    /// [`DelayModel::WorstCase`]).
    pub fn delay(self, delay: DelayModel) -> Self {
        self.delays([delay])
    }

    /// Replaces the delay axis (default: worst case only).
    pub fn delays(mut self, delays: impl IntoIterator<Item = DelayModel>) -> Self {
        self.delays = delays.into_iter().collect();
        self
    }

    /// Caps the worker-thread count. `0` (and the default) mean "auto" —
    /// the machine's available parallelism; explicit values are capped at
    /// it (see [`effective_threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Number of grid points the current axes span.
    pub fn len(&self) -> usize {
        self.graphs.len() * self.seeds.len() * self.delays.len()
    }

    /// Whether the grid has no points (some axis is empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn points(&self) -> Vec<(usize, u64, DelayModel)> {
        let mut pts = Vec::with_capacity(self.len());
        for gi in 0..self.graphs.len() {
            for &seed in &self.seeds {
                for &delay in &self.delays {
                    pts.push((gi, seed, delay));
                }
            }
        }
        pts
    }

    fn collect<F>(&self, threads: usize, f: F) -> Vec<SweepRun>
    where
        F: Fn(&SweepPoint<'_>) -> CostReport + Sync,
    {
        let points = self.points();
        par_map(&points, threads, |&(graph_index, seed, delay)| {
            let (ref label, graph) = self.graphs[graph_index];
            f(&SweepPoint {
                graph_index,
                graph_label: label,
                graph,
                seed,
                delay,
            })
        })
        .into_iter()
        .zip(points)
        .map(|(cost, (graph_index, seed, delay))| SweepRun {
            graph_index,
            graph_label: self.graphs[graph_index].0.clone(),
            seed,
            delay,
            cost,
        })
        .collect()
    }

    /// Runs `f` once per grid point across worker threads and returns the
    /// reports in grid order.
    pub fn run<F>(&self, f: F) -> Vec<SweepRun>
    where
        F: Fn(&SweepPoint<'_>) -> CostReport + Sync,
    {
        self.collect(effective_threads(self.threads.unwrap_or(0)), f)
    }

    /// Runs the grid on the calling thread only — same results as
    /// [`SweepGrid::run`], useful as the reference side of
    /// parallel-equals-sequential checks.
    pub fn run_sequential<F>(&self, f: F) -> Vec<SweepRun>
    where
        F: Fn(&SweepPoint<'_>) -> CostReport + Sync,
    {
        self.collect(1, f)
    }
}

/// Grid-level aggregate of a sweep's [`CostReport`]s.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepSummary {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Sum of message counts over all runs.
    pub total_messages: u64,
    /// Sum of weighted communication over all runs.
    pub total_weighted_comm: Cost,
    /// Maximum completion time over all runs.
    pub max_completion: SimTime,
}

/// Folds per-run reports into grid-level totals.
pub fn summarize(runs: &[SweepRun]) -> SweepSummary {
    let mut s = SweepSummary::default();
    for r in runs {
        s.runs += 1;
        s.total_messages += r.cost.messages;
        s.total_weighted_comm += r.cost.weighted_comm;
        s.max_completion = s.max_completion.max(r.cost.completion);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Context, Process};
    use crate::runtime::Simulator;
    use csp_graph::{generators, NodeId};

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..97).collect();
        for threads in [1, 2, 5] {
            let out = par_map(&items, threads, |&x| x * x);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_with_threads_worker_state() {
        let items: Vec<u64> = (0..50).collect();
        for threads in [0, 1, 3] {
            // Each worker counts how many items it processed in its own
            // state; results must still be in input order.
            let out = par_map_with(
                &items,
                threads,
                || 0u64,
                |seen, &x| {
                    *seen += 1;
                    (x, *seen)
                },
            );
            assert_eq!(
                out.iter().map(|&(x, _)| x).collect::<Vec<_>>(),
                items,
                "order broken at {threads} threads"
            );
            // Worker-local counters are all ≥ 1 and sum to the item count.
            assert!(out.iter().all(|&(_, seen)| seen >= 1));
        }
    }

    #[test]
    fn effective_threads_caps_and_autos() {
        let avail = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(effective_threads(0), avail, "0 means auto");
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(usize::MAX), avail, "requests are capped");
    }

    #[test]
    fn par_map_handles_empty_input() {
        let out: Vec<u64> = par_map(&[], 4, |_: &u64| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn par_map_propagates_worker_panics() {
        let items: Vec<u32> = (0..8).collect();
        par_map(&items, 2, |&x| {
            if x == 5 {
                panic!("boom");
            }
            x
        });
    }

    struct Flood {
        seen: bool,
    }

    impl Process for Flood {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            if ctx.self_id() == NodeId::new(0) {
                self.seen = true;
                ctx.send_all(());
            }
        }
        fn on_message(&mut self, _f: NodeId, _m: (), ctx: &mut Context<'_, ()>) {
            if !self.seen {
                self.seen = true;
                ctx.send_all(());
            }
        }
    }

    fn flood_cost(pt: &SweepPoint<'_>) -> CostReport {
        Simulator::new(pt.graph)
            .delay(pt.delay)
            .seed(pt.seed)
            .run(|_, _| Flood { seen: false })
            .unwrap()
            .cost
    }

    #[test]
    fn grid_enumerates_graphs_seeds_delays() {
        let ring = generators::cycle(6, |_| 2);
        let line = generators::path(5, |_| 3);
        let runs = SweepGrid::new()
            .graph("ring", &ring)
            .graph("line", &line)
            .seeds(0..3)
            .delays([DelayModel::WorstCase, DelayModel::Eager])
            .threads(2)
            .run(flood_cost);
        assert_eq!(runs.len(), 2 * 3 * 2);
        // Grid order: graph outermost, then seed, then delay.
        assert_eq!(runs[0].graph_label, "ring");
        assert_eq!((runs[0].seed, runs[0].delay), (0, DelayModel::WorstCase));
        assert_eq!((runs[1].seed, runs[1].delay), (0, DelayModel::Eager));
        assert_eq!(runs[5].graph_label, "ring");
        assert_eq!(runs[6].graph_label, "line");
    }

    #[test]
    fn parallel_equals_sequential() {
        let ring = generators::cycle(10, |i| 1 + i as u64 % 5);
        let grid = SweepGrid::new()
            .graph("ring", &ring)
            .seeds(0..6)
            .delay(DelayModel::Uniform);
        let par = grid.clone().threads(4).run(flood_cost);
        let seq = grid.run_sequential(flood_cost);
        assert_eq!(par, seq);
    }

    #[test]
    fn summary_folds_reports() {
        let ring = generators::cycle(6, |_| 2);
        let runs = SweepGrid::new()
            .graph("ring", &ring)
            .seeds(0..4)
            .run(flood_cost);
        let s = summarize(&runs);
        assert_eq!(s.runs, 4);
        assert_eq!(s.total_messages, runs.iter().map(|r| r.cost.messages).sum());
        assert!(s.max_completion >= runs[0].cost.completion);
    }
}
