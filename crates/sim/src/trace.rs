//! Message-level execution traces.
//!
//! When enabled with [`Simulator::record_trace`](crate::Simulator::record_trace),
//! the runtime records every delivery: who sent what to whom, when it
//! was sent, and when it arrived. Traces make adversarial schedules
//! inspectable and power the causality checks in the test suites.

use crate::cost::CostClass;
use crate::time::SimTime;
use csp_graph::{EdgeId, NodeId};
use std::fmt;

/// One delivered message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Sending vertex.
    pub from: NodeId,
    /// Receiving vertex.
    pub to: NodeId,
    /// The edge crossed.
    pub edge: EdgeId,
    /// When the message was sent.
    pub sent: SimTime,
    /// When it was delivered.
    pub delivered: SimTime,
    /// Cost class of the message.
    pub class: CostClass,
}

impl TraceEvent {
    /// The message's in-flight duration.
    pub fn latency(&self) -> u64 {
        self.delivered.since(self.sent)
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}→{} on {} [{}] sent {} delivered {}",
            self.from, self.to, self.edge, self.class, self.sent, self.delivered
        )
    }
}

/// A recorded message trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    /// Number of events dropped once the cap was reached.
    dropped: u64,
    cap: usize,
}

impl Trace {
    pub(crate) fn new(cap: usize) -> Self {
        Trace {
            events: Vec::new(),
            dropped: 0,
            cap,
        }
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.cap {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in delivery order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events dropped after the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// All deliveries into `v`, in order.
    pub fn deliveries_to(&self, v: NodeId) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| e.to == v)
    }

    /// Checks per-directed-edge FIFO: for each `(from, to)` pair,
    /// delivery order must follow send order.
    pub fn is_fifo(&self) -> bool {
        use std::collections::HashMap;
        let mut last_sent: HashMap<(NodeId, NodeId), SimTime> = HashMap::new();
        for e in &self.events {
            let key = (e.from, e.to);
            if let Some(&prev) = last_sent.get(&key) {
                if e.sent < prev {
                    return false;
                }
            }
            last_sent.insert(key, e.sent);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(from: usize, to: usize, sent: u64, delivered: u64) -> TraceEvent {
        TraceEvent {
            from: NodeId::new(from),
            to: NodeId::new(to),
            edge: EdgeId::new(0),
            sent: SimTime::new(sent),
            delivered: SimTime::new(delivered),
            class: CostClass::Protocol,
        }
    }

    #[test]
    fn latency_and_display() {
        let e = ev(0, 1, 3, 8);
        assert_eq!(e.latency(), 5);
        assert!(e.to_string().contains("v0→v1"));
    }

    #[test]
    fn cap_drops_excess() {
        let mut t = Trace::new(2);
        for i in 0..5 {
            t.push(ev(0, 1, i, i + 1));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn fifo_check() {
        let mut t = Trace::new(10);
        t.push(ev(0, 1, 0, 5));
        t.push(ev(0, 1, 2, 6));
        assert!(t.is_fifo());
        let mut bad = Trace::new(10);
        bad.push(ev(0, 1, 4, 5));
        bad.push(ev(0, 1, 2, 6)); // delivered after, but sent before
        assert!(!bad.is_fifo());
    }

    #[test]
    fn deliveries_filter() {
        let mut t = Trace::new(10);
        t.push(ev(0, 1, 0, 1));
        t.push(ev(0, 2, 0, 1));
        t.push(ev(2, 1, 1, 2));
        assert_eq!(t.deliveries_to(NodeId::new(1)).count(), 2);
    }
}
