//! The protocol interface: message-driven state machines.

use crate::cost::CostClass;
use crate::time::SimTime;
use csp_graph::{EdgeId, NodeId, Weight, WeightedGraph};

/// A node-local protocol instance.
///
/// One value of the implementing type runs at each vertex. Handlers may
/// only touch local state and the [`Context`]; the simulator owns
/// scheduling and delivery. See the [crate docs](crate) for a complete
/// example.
pub trait Process {
    /// The protocol's message alphabet.
    type Msg: Clone + std::fmt::Debug;

    /// Called once at time zero, in vertex order. Typically only an
    /// initiator does anything here.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// Called on each message delivery.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>);
}

/// Handler-side view of the network: identity, topology, clock and the
/// outbox.
///
/// The paper's model gives every vertex full knowledge of the network
/// structure (Section 1.4.1), so the whole [`WeightedGraph`] is exposed;
/// protocols for weaker models simply restrict themselves to
/// [`Context::neighbors`].
#[derive(Debug)]
pub struct Context<'a, M> {
    node: NodeId,
    now: SimTime,
    graph: &'a WeightedGraph,
    outbox: Vec<(NodeId, M, CostClass)>,
    /// Edge of each queued send, resolved once at `send` time so the
    /// runtime's dispatch never repeats the adjacency lookup.
    out_edges: Vec<EdgeId>,
}

impl<'a, M: Clone + std::fmt::Debug> Context<'a, M> {
    pub(crate) fn new(node: NodeId, now: SimTime, graph: &'a WeightedGraph) -> Self {
        Context::recycled(node, now, graph, Vec::new(), Vec::new())
    }

    /// Creates a context reusing previously drained buffers — the
    /// runtime's steady-state path, which allocates nothing per event.
    pub(crate) fn recycled(
        node: NodeId,
        now: SimTime,
        graph: &'a WeightedGraph,
        outbox: Vec<(NodeId, M, CostClass)>,
        out_edges: Vec<EdgeId>,
    ) -> Self {
        debug_assert!(outbox.is_empty() && out_edges.is_empty());
        Context {
            node,
            now,
            graph,
            outbox,
            out_edges,
        }
    }

    /// Disassembles the context into its send queue and the matching
    /// per-send edge ids (same length, same order).
    pub(crate) fn into_parts(self) -> (Vec<(NodeId, M, CostClass)>, Vec<EdgeId>) {
        (self.outbox, self.out_edges)
    }

    /// This vertex's identifier.
    #[inline]
    pub fn self_id(&self) -> NodeId {
        self.node
    }

    /// Current simulated time.
    #[inline]
    pub fn time(&self) -> SimTime {
        self.now
    }

    /// The communication graph.
    #[inline]
    pub fn graph(&self) -> &'a WeightedGraph {
        self.graph
    }

    /// Number of vertices in the network.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// `(neighbor, edge, weight)` triples of this vertex.
    pub fn neighbors(&self) -> impl Iterator<Item = (NodeId, EdgeId, Weight)> + 'a {
        self.graph.neighbors(self.node)
    }

    /// Number of incident edges.
    pub fn degree(&self) -> usize {
        self.graph.degree(self.node)
    }

    /// Sends `msg` to neighbor `to` at protocol cost class.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbor of this vertex — the model only
    /// permits communication along edges.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.send_class(to, msg, CostClass::Protocol);
    }

    /// Sends `msg` to neighbor `to`, accounted under `class`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbor of this vertex.
    pub fn send_class(&mut self, to: NodeId, msg: M, class: CostClass) {
        let Some(eid) = self.graph.edge_between(self.node, to) else {
            panic!("{} cannot send to non-neighbor {to}", self.node);
        };
        self.outbox.push((to, msg, class));
        self.out_edges.push(eid);
    }

    /// Sends a copy of `msg` to every neighbor.
    pub fn send_all(&mut self, msg: M) {
        let node = self.node;
        for eid in self.graph.incident(node) {
            let to = self.graph.edge(*eid).other(node);
            self.outbox.push((to, msg.clone(), CostClass::Protocol));
            self.out_edges.push(*eid);
        }
    }

    /// Creates a context over a different message alphabet at the same
    /// vertex, time and graph — for protocol *transformers* (controllers,
    /// synchronizers) that host an inner protocol and relay its sends
    /// through their own wrapper messages.
    pub fn derive<N: Clone + std::fmt::Debug>(&self) -> Context<'a, N> {
        Context::new(self.node, self.now, self.graph)
    }

    /// Drains the queued sends — for protocol transformers inspecting a
    /// hosted handler's output. Each entry is
    /// `(destination, message, cost class)`.
    pub fn take_outbox(&mut self) -> Vec<(NodeId, M, CostClass)> {
        self.out_edges.clear();
        std::mem::take(&mut self.outbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::generators;

    #[test]
    fn context_exposes_topology() {
        let g = generators::star(4, |_| 3);
        let ctx: Context<'_, ()> = Context::new(NodeId::new(0), SimTime::new(9), &g);
        assert_eq!(ctx.self_id(), NodeId::new(0));
        assert_eq!(ctx.time(), SimTime::new(9));
        assert_eq!(ctx.degree(), 3);
        assert_eq!(ctx.node_count(), 4);
        assert_eq!(ctx.neighbors().count(), 3);
    }

    #[test]
    fn send_all_targets_every_neighbor() {
        let g = generators::star(4, |_| 3);
        let mut ctx: Context<'_, u32> = Context::new(NodeId::new(0), SimTime::ZERO, &g);
        ctx.send_all(7);
        let out = ctx.take_outbox();
        assert_eq!(out.len(), 3);
        assert!(out
            .iter()
            .all(|(_, m, c)| *m == 7 && *c == CostClass::Protocol));
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn send_to_non_neighbor_panics() {
        let g = generators::path(3, |_| 1);
        let mut ctx: Context<'_, ()> = Context::new(NodeId::new(0), SimTime::ZERO, &g);
        ctx.send(NodeId::new(2), ()); // 0 and 2 are not adjacent on a path
    }

    #[test]
    fn take_outbox_drains() {
        let g = generators::path(2, |_| 1);
        let mut ctx: Context<'_, ()> = Context::new(NodeId::new(0), SimTime::ZERO, &g);
        ctx.send(NodeId::new(1), ());
        assert_eq!(ctx.take_outbox().len(), 1);
        assert!(ctx.take_outbox().is_empty());
    }
}
