//! The protocol interface: message-driven state machines.

use crate::cost::CostClass;
use crate::time::SimTime;
use csp_graph::{EdgeId, NodeId, Weight, WeightedGraph};

/// A node-local protocol instance.
///
/// One value of the implementing type runs at each vertex. Handlers may
/// only touch local state and the [`Context`]; the simulator owns
/// scheduling and delivery. See the [crate docs](crate) for a complete
/// example.
pub trait Process {
    /// The protocol's message alphabet.
    type Msg: Clone + std::fmt::Debug;

    /// Called once at time zero, in vertex order. Typically only an
    /// initiator does anything here.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// Called on each message delivery.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>);

    /// Called when a timer armed with [`Context::set_timer`] fires
    /// (unless cancelled first). The default does nothing, so purely
    /// message-driven protocols never mention timers.
    fn on_timer(&mut self, id: TimerId, ctx: &mut Context<'_, Self::Msg>) {
        let _ = (id, ctx);
    }
}

/// Stable per-message identifier handed back by [`Context::send`].
///
/// The token is the *sender's* dispatch index — the number of metered
/// sends this vertex issued before it — assigned in send order, so
/// protocols and retransmission layers can correlate acks and timers
/// with specific transmissions without parallel bookkeeping. Numbering
/// per sender (rather than globally) keeps the assignment independent
/// of other vertices' concurrent activity, which is what lets the
/// sharded runtime execute same-tick handlers in parallel; the global
/// dispatch index remains the adversary-facing `index` in
/// [`MsgInfo`](crate::MsgInfo).
///
/// Tokens are only meaningful for sends metered by the run that issued
/// them: contexts created through [`Context::derive`] number from zero
/// (transformers relay the inner sends through their own, which get real
/// tokens), and under a `comm_limit` truncation a queued send past the
/// budget is never dispatched even though it received a token.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MsgToken(pub u64);

/// Handle to a pending timer, for [`Context::cancel_timer`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

/// Handler-side view of the network: identity, topology, clock and the
/// outbox.
///
/// The paper's model gives every vertex full knowledge of the network
/// structure (Section 1.4.1), so the whole [`WeightedGraph`] is exposed;
/// protocols for weaker models simply restrict themselves to
/// [`Context::neighbors`].
#[derive(Debug)]
pub struct Context<'a, M> {
    node: NodeId,
    now: SimTime,
    graph: &'a WeightedGraph,
    outbox: Vec<(NodeId, M, CostClass)>,
    /// Edge of each queued send, resolved once at `send` time so the
    /// runtime's dispatch never repeats the adjacency lookup.
    out_edges: Vec<EdgeId>,
    /// Requested delay of each timer armed this handler, in arming order.
    timers: Vec<u64>,
    /// Timer ids cancelled this handler.
    cancels: Vec<u64>,
    /// Token the first queued send will receive — the vertex's metered
    /// send count at handler entry.
    msg_base: u64,
    /// Id the first armed timer will receive — the vertex's timer count
    /// at handler entry.
    timer_base: u64,
    /// Effective per-edge weights under the adversary's drift plan, set
    /// by executors that support weight revision; `None` means the
    /// graph's static weights are current.
    eff: Option<&'a [Weight]>,
}

impl<'a, M: Clone + std::fmt::Debug> Context<'a, M> {
    pub(crate) fn new(node: NodeId, now: SimTime, graph: &'a WeightedGraph) -> Self {
        Context::recycled(
            node,
            now,
            graph,
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            0,
            0,
        )
    }

    /// Creates a context reusing previously drained buffers — the
    /// runtime's steady-state path, which allocates nothing per event.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn recycled(
        node: NodeId,
        now: SimTime,
        graph: &'a WeightedGraph,
        outbox: Vec<(NodeId, M, CostClass)>,
        out_edges: Vec<EdgeId>,
        timers: Vec<u64>,
        cancels: Vec<u64>,
        msg_base: u64,
        timer_base: u64,
    ) -> Self {
        debug_assert!(outbox.is_empty() && out_edges.is_empty());
        debug_assert!(timers.is_empty() && cancels.is_empty());
        Context {
            node,
            now,
            graph,
            outbox,
            out_edges,
            timers,
            cancels,
            msg_base,
            timer_base,
            eff: None,
        }
    }

    /// Attaches the executor's effective-weight table, making
    /// [`Context::weight_of`] reflect mid-run drift.
    pub(crate) fn with_weights(mut self, eff: &'a [Weight]) -> Self {
        self.eff = Some(eff);
        self
    }

    /// Disassembles the context into its send queue, the matching
    /// per-send edge ids (same length, same order), the armed timer
    /// delays and the cancelled timer ids.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> (Vec<(NodeId, M, CostClass)>, Vec<EdgeId>, Vec<u64>, Vec<u64>) {
        (self.outbox, self.out_edges, self.timers, self.cancels)
    }

    /// Whether any timer was armed or cancelled through this context —
    /// lets executors without a timer facility reject timer use loudly
    /// instead of silently never firing.
    pub(crate) fn has_timer_ops(&self) -> bool {
        !self.timers.is_empty() || !self.cancels.is_empty()
    }

    /// This vertex's identifier.
    #[inline]
    pub fn self_id(&self) -> NodeId {
        self.node
    }

    /// Current simulated time.
    #[inline]
    pub fn time(&self) -> SimTime {
        self.now
    }

    /// The communication graph.
    #[inline]
    pub fn graph(&self) -> &'a WeightedGraph {
        self.graph
    }

    /// Number of vertices in the network.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// `(neighbor, edge, weight)` triples of this vertex. The weights
    /// are the graph's *static* weights; under a drifting adversary the
    /// current value of an edge is [`Context::weight_of`].
    pub fn neighbors(&self) -> impl Iterator<Item = (NodeId, EdgeId, Weight)> + 'a {
        self.graph.neighbors(self.node)
    }

    /// Current effective weight of edge `e`: the graph weight unless the
    /// adversary revised it mid-run
    /// ([`LinkOracle::drift_plan`](crate::LinkOracle::drift_plan)), in
    /// which case the revision visible at the current time is returned.
    /// Protocols that derive timeouts from weights (failure-detector
    /// horizons, retransmission timers) should read weights through
    /// this.
    #[inline]
    pub fn weight_of(&self, e: EdgeId) -> Weight {
        match self.eff {
            Some(eff) => eff[e.index()],
            None => self.graph.weight(e),
        }
    }

    /// Number of incident edges.
    pub fn degree(&self) -> usize {
        self.graph.degree(self.node)
    }

    /// Sends `msg` to neighbor `to` at protocol cost class, returning
    /// the message's stable [`MsgToken`].
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbor of this vertex — the model only
    /// permits communication along edges.
    pub fn send(&mut self, to: NodeId, msg: M) -> MsgToken {
        self.send_class(to, msg, CostClass::Protocol)
    }

    /// Sends `msg` to neighbor `to`, accounted under `class`, returning
    /// the message's stable [`MsgToken`].
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbor of this vertex.
    pub fn send_class(&mut self, to: NodeId, msg: M, class: CostClass) -> MsgToken {
        let Some(eid) = self.graph.edge_between(self.node, to) else {
            panic!("{} cannot send to non-neighbor {to}", self.node);
        };
        let token = MsgToken(self.msg_base + self.outbox.len() as u64);
        self.outbox.push((to, msg, class));
        self.out_edges.push(eid);
        token
    }

    /// Sends a copy of `msg` to every neighbor, returning the
    /// [`MsgToken`] of the *first* copy (the copies occupy consecutive
    /// dispatch indices in [`Context::neighbors`] order, so copy `k` is
    /// `MsgToken(first.0 + k)`). Returns `None` on an isolated vertex.
    pub fn send_all(&mut self, msg: M) -> Option<MsgToken> {
        let node = self.node;
        let first = MsgToken(self.msg_base + self.outbox.len() as u64);
        let mut any = false;
        for eid in self.graph.incident(node) {
            let to = self.graph.edge(*eid).other(node);
            self.outbox.push((to, msg.clone(), CostClass::Protocol));
            self.out_edges.push(*eid);
            any = true;
        }
        any.then_some(first)
    }

    /// Arms a local timer that fires [`Process::on_timer`] at this
    /// vertex after `delay` ticks (clamped to at least 1 — timers share
    /// the runtime's discrete clock). Timer fires are scheduler events
    /// but not communication: they cost nothing and do not advance the
    /// run's completion time on their own.
    ///
    /// Only the asynchronous [`Simulator`](crate::Simulator) cores
    /// execute timers; the
    /// [`BaselineSimulator`](crate::BaselineSimulator) rejects them.
    pub fn set_timer(&mut self, delay: u64) -> TimerId {
        let id = TimerId(self.timer_base + self.timers.len() as u64);
        self.timers.push(delay.max(1));
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired or foreign
    /// timer id is a silent no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.cancels.push(id.0);
    }

    /// Creates a context over a different message alphabet at the same
    /// vertex, time and graph — for protocol *transformers* (controllers,
    /// synchronizers) that host an inner protocol and relay its sends
    /// through their own wrapper messages.
    ///
    /// Derived contexts are detached from the runtime: their
    /// [`MsgToken`]s number from zero (the transformer's relayed sends
    /// carry the real tokens) and timers armed on them are discarded
    /// rather than scheduled — a transformer that hosts a timer-using
    /// protocol must forward timer ops itself.
    pub fn derive<N: Clone + std::fmt::Debug>(&self) -> Context<'a, N> {
        let mut ctx = Context::new(self.node, self.now, self.graph);
        ctx.eff = self.eff;
        ctx
    }

    /// Like [`Context::derive`], but the derived context assigns timer
    /// ids starting from `timer_base` — for transformers that *forward*
    /// a hosted protocol's timer ops to the runtime instead of
    /// discarding them.
    ///
    /// The transformer owns the inner protocol's timer-id space: it
    /// passes the count of inner timers armed so far as `timer_base`, so
    /// the ids the inner protocol sees are stable, then maps each
    /// inner arm/cancel onto real timers of its own (see
    /// `csp_sim::detect::Detect` for the canonical use). Message tokens
    /// still number from zero, exactly as with [`Context::derive`].
    pub fn derive_with_timers<N: Clone + std::fmt::Debug>(
        &self,
        timer_base: u64,
    ) -> Context<'a, N> {
        let mut ctx = Context::recycled(
            self.node,
            self.now,
            self.graph,
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            0,
            timer_base,
        );
        ctx.eff = self.eff;
        ctx
    }

    /// Drains the timer ops queued on this context — the armed delays
    /// (in arming order; the `k`-th entry carries id `timer_base + k`)
    /// and the cancelled timer ids. For transformers that forward a
    /// hosted protocol's timers; see [`Context::derive_with_timers`].
    pub fn take_timer_ops(&mut self) -> (Vec<u64>, Vec<u64>) {
        (
            std::mem::take(&mut self.timers),
            std::mem::take(&mut self.cancels),
        )
    }

    /// Drains the queued sends — for protocol transformers inspecting a
    /// hosted handler's output. Each entry is
    /// `(destination, message, cost class)`.
    pub fn take_outbox(&mut self) -> Vec<(NodeId, M, CostClass)> {
        self.out_edges.clear();
        std::mem::take(&mut self.outbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::generators;

    #[test]
    fn context_exposes_topology() {
        let g = generators::star(4, |_| 3);
        let ctx: Context<'_, ()> = Context::new(NodeId::new(0), SimTime::new(9), &g);
        assert_eq!(ctx.self_id(), NodeId::new(0));
        assert_eq!(ctx.time(), SimTime::new(9));
        assert_eq!(ctx.degree(), 3);
        assert_eq!(ctx.node_count(), 4);
        assert_eq!(ctx.neighbors().count(), 3);
    }

    #[test]
    fn weight_of_prefers_the_effective_table() {
        let g = generators::path(3, |_| 4);
        let ctx: Context<'_, ()> = Context::new(NodeId::new(0), SimTime::ZERO, &g);
        assert_eq!(ctx.weight_of(EdgeId::new(0)), Weight::new(4));
        let eff = vec![Weight::new(9), Weight::new(4)];
        let ctx = ctx.with_weights(&eff);
        assert_eq!(ctx.weight_of(EdgeId::new(0)), Weight::new(9));
        // Derived contexts inherit the table.
        let d: Context<'_, u32> = ctx.derive();
        assert_eq!(d.weight_of(EdgeId::new(0)), Weight::new(9));
        let dt: Context<'_, u32> = ctx.derive_with_timers(3);
        assert_eq!(dt.weight_of(EdgeId::new(0)), Weight::new(9));
    }

    #[test]
    fn send_all_targets_every_neighbor() {
        let g = generators::star(4, |_| 3);
        let mut ctx: Context<'_, u32> = Context::new(NodeId::new(0), SimTime::ZERO, &g);
        ctx.send_all(7);
        let out = ctx.take_outbox();
        assert_eq!(out.len(), 3);
        assert!(out
            .iter()
            .all(|(_, m, c)| *m == 7 && *c == CostClass::Protocol));
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn send_to_non_neighbor_panics() {
        let g = generators::path(3, |_| 1);
        let mut ctx: Context<'_, ()> = Context::new(NodeId::new(0), SimTime::ZERO, &g);
        ctx.send(NodeId::new(2), ()); // 0 and 2 are not adjacent on a path
    }

    #[test]
    fn take_outbox_drains() {
        let g = generators::path(2, |_| 1);
        let mut ctx: Context<'_, ()> = Context::new(NodeId::new(0), SimTime::ZERO, &g);
        ctx.send(NodeId::new(1), ());
        assert_eq!(ctx.take_outbox().len(), 1);
        assert!(ctx.take_outbox().is_empty());
    }

    #[test]
    fn tokens_count_from_the_message_base() {
        let g = generators::star(4, |_| 3);
        let mut ctx: Context<'_, u32> = Context::recycled(
            NodeId::new(0),
            SimTime::ZERO,
            &g,
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            17,
            0,
        );
        assert_eq!(ctx.send(NodeId::new(1), 1), MsgToken(17));
        assert_eq!(ctx.send(NodeId::new(2), 2), MsgToken(18));
        // send_all returns the first copy; copies are consecutive.
        assert_eq!(ctx.send_all(3), Some(MsgToken(19)));
        assert_eq!(ctx.take_outbox().len(), 5);
    }

    #[test]
    fn timer_ids_count_from_the_timer_base() {
        let g = generators::path(2, |_| 1);
        let mut ctx: Context<'_, ()> = Context::recycled(
            NodeId::new(0),
            SimTime::ZERO,
            &g,
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            0,
            5,
        );
        assert!(!ctx.has_timer_ops());
        assert_eq!(ctx.set_timer(0), TimerId(5)); // delay clamps to 1
        assert_eq!(ctx.set_timer(9), TimerId(6));
        ctx.cancel_timer(TimerId(5));
        assert!(ctx.has_timer_ops());
        let (_, _, timers, cancels) = ctx.into_parts();
        assert_eq!(timers, [1, 9]);
        assert_eq!(cancels, [5]);
    }
}
