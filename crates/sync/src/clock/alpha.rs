//! Clock synchronizer α\* (Section 3.1).
//!
//! Whenever a vertex generates pulse `p` it sends a pulse token to every
//! neighbor over the direct edge; having received pulse-`p` tokens from
//! all neighbors, it generates pulse `p + 1`. Simple and
//! message-minimal, but the pulse delay is governed by the *heaviest*
//! incident edge: `Θ(W)` in the worst case.

use super::stats::{ClockOutcome, PulseStats};
use csp_graph::{NodeId, WeightedGraph};
use csp_sim::{Context, CostClass, DelayModel, Process, SimError, SimTime, Simulator};
use std::collections::BTreeMap;

/// Per-vertex state of synchronizer α\*.
#[derive(Clone, Debug)]
pub struct AlphaStar {
    pulses: u64,
    degree: usize,
    current: u64,
    /// Tokens received per future pulse index.
    received: BTreeMap<u64, usize>,
    /// Generation time of each pulse.
    times: Vec<SimTime>,
}

impl AlphaStar {
    /// Creates the per-vertex state, targeting `pulses` pulses.
    pub fn new(v: NodeId, g: &WeightedGraph, pulses: u64) -> Self {
        AlphaStar {
            pulses,
            degree: g.degree(v),
            current: 0,
            received: BTreeMap::new(),
            times: Vec::new(),
        }
    }

    /// Recorded pulse generation times.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    fn generate(&mut self, pulse: u64, ctx: &mut Context<'_, u64>) {
        self.current = pulse;
        self.times.push(ctx.time());
        if pulse + 1 >= self.pulses {
            return; // generated the last pulse; stop announcing
        }
        let targets: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
        for u in targets {
            ctx.send_class(u, pulse, CostClass::Synchronizer);
        }
        self.try_advance(ctx);
    }

    fn try_advance(&mut self, ctx: &mut Context<'_, u64>) {
        while self.received.get(&self.current).copied().unwrap_or(0) == self.degree
            && self.current + 1 < self.pulses
        {
            self.received.remove(&self.current);
            let next = self.current + 1;
            self.generate(next, ctx);
        }
    }
}

impl Process for AlphaStar {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        if self.pulses > 0 {
            self.generate(0, ctx);
        }
    }

    fn on_message(&mut self, _from: NodeId, pulse: u64, ctx: &mut Context<'_, u64>) {
        *self.received.entry(pulse).or_insert(0) += 1;
        self.try_advance(ctx);
    }
}

/// Runs synchronizer α\* for `pulses` pulses.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if some vertex failed to generate all pulses (cannot happen on
/// a connected graph).
pub fn run_alpha_star(
    g: &WeightedGraph,
    pulses: u64,
    delay: DelayModel,
    seed: u64,
) -> Result<ClockOutcome, SimError> {
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(|v, g| AlphaStar::new(v, g, pulses))?;
    let times: Vec<Vec<SimTime>> = run.states.iter().map(|s| s.times().to_vec()).collect();
    assert!(
        times.iter().all(|ts| ts.len() == pulses as usize),
        "every vertex must generate every pulse"
    );
    Ok(ClockOutcome {
        stats: PulseStats { times },
        cost: run.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::generators;
    use csp_graph::params::CostParams;

    #[test]
    fn alpha_star_pulse_delay_is_theta_w() {
        let g = generators::heavy_chord_cycle(12, 200);
        let p = CostParams::of(&g);
        let out = run_alpha_star(&g, 5, DelayModel::WorstCase, 0).unwrap();
        assert_eq!(out.stats.min_pulses(), 5);
        let delay = out.stats.max_pulse_delay();
        // Exactly W under worst-case delays: the heavy chord dominates.
        assert_eq!(delay as u128, p.max_weight.get() as u128);
        assert!(out.stats.is_monotone());
    }

    #[test]
    fn alpha_star_invariant_under_random_delays() {
        let g = generators::grid(3, 4, generators::WeightDist::Uniform(1, 30), 4);
        for seed in 0..4 {
            let out = run_alpha_star(&g, 4, DelayModel::Uniform, seed).unwrap();
            assert_eq!(out.stats.min_pulses(), 4);
            assert!(out.stats.is_monotone());
        }
    }

    #[test]
    fn alpha_star_message_count_is_pulses_times_degree_sum() {
        let g = generators::cycle(8, |_| 3);
        let out = run_alpha_star(&g, 6, DelayModel::WorstCase, 0).unwrap();
        // Each vertex announces pulses 0..=4 (not the last) to 2 neighbors.
        assert_eq!(out.cost.messages, 8 * 2 * 5);
    }

    #[test]
    fn single_pulse_needs_no_messages() {
        let g = generators::path(3, |_| 2);
        let out = run_alpha_star(&g, 1, DelayModel::WorstCase, 0).unwrap();
        assert_eq!(out.cost.messages, 0);
        assert_eq!(out.stats.min_pulses(), 1);
    }
}
