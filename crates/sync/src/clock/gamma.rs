//! Clock synchronizer γ\* (Section 3.3).
//!
//! Preprocessing builds a **tree edge-cover** (Definition 3.1, via
//! [`csp_graph::cover::tree_edge_cover`]): a collection of trees of depth
//! `O(d·log n)` such that every edge's endpoints share a tree and no
//! vertex lies in more than `O(log n)` trees.
//!
//! Per pulse, two phases:
//!
//! 1. **β inside each tree**: completion reports convergecast to the tree
//!    leader, which broadcasts `TreeDone` back down;
//! 2. **α among trees**: for every pair of *neighboring* trees (trees
//!    sharing a vertex), a designated shared vertex relays the neighbor's
//!    `TreeDone` toward the other leader; once a leader knows its own
//!    tree and all neighboring trees are done, it broadcasts `Go`, and a
//!    vertex generates the next pulse when all its trees said `Go`.
//!
//! Congestion adds at most a `O(log n)` factor over the `O(d·log n)`
//! tree depth, so the pulse delay is `O(d·log² n)` — near the `Ω(d)`
//! lower bound, and far below α\*'s `O(W)` when heavy edges have light
//! detours.

use super::stats::{ClockOutcome, PulseStats};
use csp_graph::cover::{tree_edge_cover, TreeEdgeCover};
use csp_graph::{NodeId, WeightedGraph};
use csp_sim::{Context, CostClass, DelayModel, Process, SimError, SimTime, Simulator};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// γ\* messages. `tree` always addresses the tree whose structure the
/// message travels on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GammaMsg {
    /// Convergecast: subtree of `tree` finished pulse `p`.
    DoneUp {
        /// Tree index in the cover.
        tree: usize,
        /// Pulse index.
        pulse: u64,
    },
    /// Broadcast: all of `tree` finished pulse `p`.
    TreeDone {
        /// Tree index in the cover.
        tree: usize,
        /// Pulse index.
        pulse: u64,
    },
    /// Relay climbing `tree` toward its leader: neighboring tree `from`
    /// is done with pulse `p`.
    NbrDone {
        /// Destination tree (whose leader must learn the fact).
        tree: usize,
        /// The neighboring tree that finished.
        from: usize,
        /// Pulse index.
        pulse: u64,
    },
    /// Broadcast: `tree` and all its neighbors are done; members may
    /// count `tree` toward generating pulse `p + 1`.
    Go {
        /// Tree index in the cover.
        tree: usize,
        /// Pulse index.
        pulse: u64,
    },
}

/// A vertex's `(parent, children)` within one cover tree.
type TreePosition = (Option<NodeId>, Vec<NodeId>);

/// Static per-vertex placement inside the cover, shared by all vertices.
#[derive(Debug)]
struct CoverLayout {
    /// Trees containing each vertex.
    trees_of: Vec<Vec<usize>>,
    /// `(parent, children)` of each vertex in each tree (indexed
    /// `[tree][vertex]`), `None` if the vertex is outside the tree.
    position: Vec<Vec<Option<TreePosition>>>,
    /// Neighboring trees of each tree.
    tree_neighbors: Vec<BTreeSet<usize>>,
    /// For each ordered pair `(a, b)` of neighboring trees, the single
    /// vertex responsible for relaying `TreeDone(a)` into `b`.
    relay: BTreeMap<(usize, usize), NodeId>,
}

impl CoverLayout {
    fn build(g: &WeightedGraph, cover: &TreeEdgeCover) -> Self {
        let n = g.node_count();
        let t = cover.trees.len();
        let mut trees_of = vec![Vec::new(); n];
        let mut position = vec![vec![None; n]; t];
        for (ti, tree) in cover.trees.iter().enumerate() {
            let children = tree.children_lists();
            for v in tree.members() {
                trees_of[v.index()].push(ti);
                let parent = tree.parent(v).map(|(p, _, _)| p);
                let kids = children[v.index()].iter().map(|&(c, _)| c).collect();
                position[ti][v.index()] = Some((parent, kids));
            }
        }
        let mut tree_neighbors = vec![BTreeSet::new(); t];
        let mut relay = BTreeMap::new();
        for (v, ts) in trees_of.iter().enumerate() {
            for (i, &a) in ts.iter().enumerate() {
                for &b in &ts[i + 1..] {
                    tree_neighbors[a].insert(b);
                    tree_neighbors[b].insert(a);
                    // smallest shared vertex is responsible, both ways
                    relay.entry((a, b)).or_insert(NodeId::new(v));
                    relay.entry((b, a)).or_insert(NodeId::new(v));
                }
            }
        }
        CoverLayout {
            trees_of,
            position,
            tree_neighbors,
            relay,
        }
    }
}

/// Per-(tree, pulse) progress at one vertex.
#[derive(Clone, Debug, Default)]
struct TreeRound {
    done_up: usize,
    tree_done: bool,
    nbr_done: BTreeSet<usize>,
    go: bool,
}

/// Per-vertex state of synchronizer γ\*.
#[derive(Debug)]
pub struct GammaStar {
    layout: Arc<CoverLayout>,
    pulses: u64,
    current: u64,
    times: Vec<SimTime>,
    /// Progress per (tree, pulse).
    rounds: BTreeMap<(usize, u64), TreeRound>,
}

impl GammaStar {
    fn new(layout: Arc<CoverLayout>, pulses: u64) -> Self {
        GammaStar {
            layout,
            pulses,
            current: 0,
            times: Vec::new(),
            rounds: BTreeMap::new(),
        }
    }

    /// Recorded pulse generation times.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    fn my_position(&self, tree: usize, me: NodeId) -> &(Option<NodeId>, Vec<NodeId>) {
        self.layout.position[tree][me.index()]
            .as_ref()
            .expect("message routed within a containing tree")
    }

    fn generate(&mut self, pulse: u64, ctx: &mut Context<'_, GammaMsg>) {
        self.current = pulse;
        self.times.push(ctx.time());
        if pulse + 1 >= self.pulses {
            return;
        }
        // Phase 1 kickoff in every containing tree.
        let me = ctx.self_id();
        for tree in self.layout.trees_of[me.index()].clone() {
            self.maybe_done_up(tree, pulse, ctx);
        }
    }

    /// Convergecast step: report `DoneUp` when self + all children in the
    /// tree are done with `pulse`.
    fn maybe_done_up(&mut self, tree: usize, pulse: u64, ctx: &mut Context<'_, GammaMsg>) {
        let me = ctx.self_id();
        if (self.times.len() as u64) <= pulse {
            return; // haven't generated this pulse yet
        }
        let (parent, children) = self.my_position(tree, me).clone();
        let round = self.rounds.entry((tree, pulse)).or_default();
        if round.done_up != children.len() {
            return;
        }
        match parent {
            Some(p) => {
                ctx.send_class(p, GammaMsg::DoneUp { tree, pulse }, CostClass::Synchronizer);
            }
            None => self.on_tree_done(tree, pulse, ctx),
        }
    }

    /// A tree (ours or relayed) is fully done: broadcast inside it and
    /// relay to neighboring trees at the designated shared vertices.
    fn on_tree_done(&mut self, tree: usize, pulse: u64, ctx: &mut Context<'_, GammaMsg>) {
        let me = ctx.self_id();
        {
            let round = self.rounds.entry((tree, pulse)).or_default();
            if round.tree_done {
                return;
            }
            round.tree_done = true;
        }
        let (_, children) = self.my_position(tree, me).clone();
        for c in children {
            ctx.send_class(
                c,
                GammaMsg::TreeDone { tree, pulse },
                CostClass::Synchronizer,
            );
        }
        // Relay duty: for each neighboring tree pair where I'm designated.
        for other in self.layout.trees_of[me.index()].clone() {
            if other == tree {
                continue;
            }
            if self.layout.relay.get(&(tree, other)) == Some(&me) {
                self.forward_nbr_done(other, tree, pulse, ctx);
            }
        }
        // Leaders also re-check the Go condition.
        self.maybe_go(tree, pulse, ctx);
    }

    /// Climb `tree` toward its leader with the news that `from` is done.
    fn forward_nbr_done(
        &mut self,
        tree: usize,
        from: usize,
        pulse: u64,
        ctx: &mut Context<'_, GammaMsg>,
    ) {
        let me = ctx.self_id();
        let (parent, _) = self.my_position(tree, me).clone();
        match parent {
            Some(p) => {
                ctx.send_class(
                    p,
                    GammaMsg::NbrDone { tree, from, pulse },
                    CostClass::Synchronizer,
                );
            }
            None => {
                // I am the leader of `tree`.
                self.rounds
                    .entry((tree, pulse))
                    .or_default()
                    .nbr_done
                    .insert(from);
                self.maybe_go(tree, pulse, ctx);
            }
        }
    }

    /// Leader check: own tree done + all neighboring trees done → `Go`.
    fn maybe_go(&mut self, tree: usize, pulse: u64, ctx: &mut Context<'_, GammaMsg>) {
        let me = ctx.self_id();
        let (parent, _) = self.my_position(tree, me).clone();
        if parent.is_some() {
            return; // only the leader decides
        }
        let needed = self.layout.tree_neighbors[tree].len();
        let ready = {
            let round = self.rounds.entry((tree, pulse)).or_default();
            round.tree_done && round.nbr_done.len() == needed && !round.go
        };
        if ready {
            self.on_go(tree, pulse, ctx);
        }
    }

    /// Process (and forward) a `Go` broadcast, then try to pulse.
    fn on_go(&mut self, tree: usize, pulse: u64, ctx: &mut Context<'_, GammaMsg>) {
        let me = ctx.self_id();
        {
            let round = self.rounds.entry((tree, pulse)).or_default();
            if round.go {
                return;
            }
            round.go = true;
        }
        let (_, children) = self.my_position(tree, me).clone();
        for c in children {
            ctx.send_class(c, GammaMsg::Go { tree, pulse }, CostClass::Synchronizer);
        }
        self.maybe_pulse(ctx);
    }

    /// Generate the next pulse once every containing tree said `Go`.
    fn maybe_pulse(&mut self, ctx: &mut Context<'_, GammaMsg>) {
        let me = ctx.self_id();
        loop {
            let p = self.current;
            if p + 1 >= self.pulses {
                return;
            }
            let all_go = self.layout.trees_of[me.index()]
                .iter()
                .all(|&t| self.rounds.get(&(t, p)).map(|r| r.go).unwrap_or(false));
            if !all_go {
                return;
            }
            // Clean up the completed round's state.
            for &t in &self.layout.trees_of[me.index()] {
                self.rounds.remove(&(t, p));
            }
            self.generate(p + 1, ctx);
        }
    }
}

impl Process for GammaStar {
    type Msg = GammaMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, GammaMsg>) {
        if self.pulses > 0 {
            self.generate(0, ctx);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: GammaMsg, ctx: &mut Context<'_, GammaMsg>) {
        match msg {
            GammaMsg::DoneUp { tree, pulse } => {
                self.rounds.entry((tree, pulse)).or_default().done_up += 1;
                self.maybe_done_up(tree, pulse, ctx);
            }
            GammaMsg::TreeDone { tree, pulse } => self.on_tree_done(tree, pulse, ctx),
            GammaMsg::NbrDone { tree, from, pulse } => {
                self.forward_nbr_done(tree, from, pulse, ctx)
            }
            GammaMsg::Go { tree, pulse } => self.on_go(tree, pulse, ctx),
        }
    }
}

/// Runs synchronizer γ\* for `pulses` pulses.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected or has no edges (the tree edge-cover is
/// undefined).
pub fn run_gamma_star(
    g: &WeightedGraph,
    pulses: u64,
    delay: DelayModel,
    seed: u64,
) -> Result<ClockOutcome, SimError> {
    let cover = tree_edge_cover(g);
    let layout = Arc::new(CoverLayout::build(g, &cover));
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(|_, _| GammaStar::new(Arc::clone(&layout), pulses))?;
    let times: Vec<Vec<SimTime>> = run.states.iter().map(|s| s.times().to_vec()).collect();
    assert!(
        times.iter().all(|ts| ts.len() == pulses as usize),
        "every vertex must generate every pulse"
    );
    Ok(ClockOutcome {
        stats: PulseStats { times },
        cost: run.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::generators;
    use csp_graph::params::CostParams;

    #[test]
    fn gamma_star_generates_all_pulses() {
        let g = generators::heavy_chord_cycle(10, 100);
        let out = run_gamma_star(&g, 4, DelayModel::WorstCase, 0).unwrap();
        assert_eq!(out.stats.min_pulses(), 4);
        assert!(out.stats.is_monotone());
    }

    #[test]
    fn gamma_star_beats_alpha_star_when_d_is_small() {
        // d ≪ W: γ*'s pulse delay must undercut α*'s Θ(W).
        let g = generators::heavy_chord_cycle(16, 4_000);
        let p = CostParams::of(&g);
        assert!(p.max_neighbor_distance.get() < 20);
        let gamma = run_gamma_star(&g, 4, DelayModel::WorstCase, 0).unwrap();
        let alpha = super::super::alpha::run_alpha_star(&g, 4, DelayModel::WorstCase, 0).unwrap();
        assert!(
            gamma.stats.max_pulse_delay() < alpha.stats.max_pulse_delay(),
            "γ* delay {} should beat α* delay {}",
            gamma.stats.max_pulse_delay(),
            alpha.stats.max_pulse_delay()
        );
    }

    #[test]
    fn gamma_star_delay_is_o_d_log2_n() {
        let g = generators::heavy_chord_cycle(20, 10_000);
        let p = CostParams::of(&g);
        let out = run_gamma_star(&g, 4, DelayModel::WorstCase, 0).unwrap();
        let d = p.max_neighbor_distance.get().max(1);
        let log_n = (p.n as f64).log2().ceil() as u128;
        // generous constant 12 over d·log²n
        let bound = 12 * d * log_n * log_n;
        assert!(
            (out.stats.max_pulse_delay() as u128) <= bound,
            "γ* delay {} > 12·d·log²n = {bound}",
            out.stats.max_pulse_delay()
        );
    }

    #[test]
    fn gamma_star_under_random_delays() {
        let g = generators::grid(3, 4, generators::WeightDist::Uniform(1, 40), 6);
        for seed in 0..3 {
            let out = run_gamma_star(&g, 3, DelayModel::Uniform, seed).unwrap();
            assert_eq!(out.stats.min_pulses(), 3);
        }
    }
}
