//! Clock synchronizers α\*, β\* and γ\* (Section 3).
//!
//! All three generate `pulses` pulses at every vertex under the invariant
//! that pulse `p` is generated only after every neighbor generated pulse
//! `p − 1` (causally). They differ in *pulse delay* — the worst-case time
//! between successive pulses at a vertex:
//!
//! | synchronizer | mechanism | pulse delay |
//! |---|---|---|
//! | α\* ([`run_alpha_star`]) | exchange pulse tokens with every neighbor over the direct edge | `O(W)` |
//! | β\* ([`run_beta_star`]) | convergecast/broadcast on one global tree | `O(D̂)` (tree diameter) |
//! | γ\* ([`run_gamma_star`]) | tree edge-cover: β inside each cover tree, α among trees | `O(d·log² n)` |
//!
//! The lower bound is `Ω(d)`, where `d` is the maximum weighted distance
//! between neighbors; γ\* approaches it within `log² n` whenever heavy
//! edges have light detours (`d ≪ W`).

mod alpha;
mod beta;
mod gamma;
mod stats;

pub use alpha::run_alpha_star;
pub use beta::run_beta_star;
pub use gamma::run_gamma_star;
pub use stats::{ClockOutcome, PulseStats};
