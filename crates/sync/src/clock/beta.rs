//! Clock synchronizer β\* (Section 3.2).
//!
//! Preprocessing picks one global spanning tree and a leader (we use the
//! shortest-path tree of a given root, which minimizes depth). Per pulse:
//! completion reports *convergecast* from the leaves to the leader, which
//! then *broadcasts* permission for the next pulse. The pulse delay is a
//! full tree round-trip — `Θ(depth(T))`, which is `Ω(D̂)` on any tree —
//! independent of `W`, so β\* beats α\* when `W ≫ D̂` but loses to γ\*
//! when `d ≪ D̂`.

use super::stats::{ClockOutcome, PulseStats};
use csp_graph::algo::shortest_path_tree;
use csp_graph::{NodeId, RootedTree, WeightedGraph};
use csp_sim::{Context, CostClass, DelayModel, Process, SimError, SimTime, Simulator};
use std::collections::BTreeMap;

/// β\* messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BetaMsg {
    /// Subtree finished pulse `p` (convergecast).
    Done(u64),
    /// Generate pulse `p` (broadcast).
    Next(u64),
}

/// Per-vertex state of synchronizer β\*.
#[derive(Clone, Debug)]
pub struct BetaStar {
    pulses: u64,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Done reports per pulse.
    done: BTreeMap<u64, usize>,
    times: Vec<SimTime>,
}

impl BetaStar {
    /// Creates the per-vertex state over the shared tree.
    pub fn new(v: NodeId, tree: &RootedTree, pulses: u64) -> Self {
        BetaStar {
            pulses,
            parent: tree.parent(v).map(|(p, _, _)| p),
            children: tree.children_lists()[v.index()]
                .iter()
                .map(|&(c, _)| c)
                .collect(),
            done: BTreeMap::new(),
            times: Vec::new(),
        }
    }

    /// Recorded pulse generation times.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    fn generate(&mut self, pulse: u64, ctx: &mut Context<'_, BetaMsg>) {
        self.times.push(ctx.time());
        if pulse + 1 >= self.pulses {
            return;
        }
        // Done with this pulse instantly (clock synchronization carries no
        // protocol work).
        self.maybe_report(pulse, ctx);
    }

    fn maybe_report(&mut self, pulse: u64, ctx: &mut Context<'_, BetaMsg>) {
        let have = self.done.get(&pulse).copied().unwrap_or(0);
        if have == self.children.len() && (self.times.len() as u64) > pulse {
            match self.parent {
                Some(p) => {
                    ctx.send_class(p, BetaMsg::Done(pulse), CostClass::Synchronizer);
                }
                None => {
                    // Leader: everyone finished; broadcast the next pulse.
                    self.done.remove(&pulse);
                    self.broadcast_next(pulse + 1, ctx);
                }
            }
        }
    }

    fn broadcast_next(&mut self, pulse: u64, ctx: &mut Context<'_, BetaMsg>) {
        for c in self.children.clone() {
            ctx.send_class(c, BetaMsg::Next(pulse), CostClass::Synchronizer);
        }
        self.generate(pulse, ctx);
    }
}

impl Process for BetaStar {
    type Msg = BetaMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, BetaMsg>) {
        if self.pulses > 0 {
            self.generate(0, ctx);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: BetaMsg, ctx: &mut Context<'_, BetaMsg>) {
        match msg {
            BetaMsg::Done(p) => {
                *self.done.entry(p).or_insert(0) += 1;
                self.maybe_report(p, ctx);
            }
            BetaMsg::Next(p) => {
                for c in self.children.clone() {
                    ctx.send_class(c, BetaMsg::Next(p), CostClass::Synchronizer);
                }
                self.generate(p, ctx);
            }
        }
    }
}

/// Runs synchronizer β\* for `pulses` pulses over the SPT rooted at
/// `leader`.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected or `leader` is out of range.
pub fn run_beta_star(
    g: &WeightedGraph,
    leader: NodeId,
    pulses: u64,
    delay: DelayModel,
    seed: u64,
) -> Result<ClockOutcome, SimError> {
    g.check_node(leader);
    let tree = shortest_path_tree(g, leader);
    assert!(tree.is_spanning(), "β* needs a connected graph");
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(|v, _| BetaStar::new(v, &tree, pulses))?;
    let times: Vec<Vec<SimTime>> = run.states.iter().map(|s| s.times().to_vec()).collect();
    assert!(
        times.iter().all(|ts| ts.len() == pulses as usize),
        "every vertex must generate every pulse"
    );
    Ok(ClockOutcome {
        stats: PulseStats { times },
        cost: run.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::generators;
    use csp_graph::params::CostParams;

    #[test]
    fn beta_star_generates_all_pulses() {
        let g = generators::grid(3, 4, generators::WeightDist::Uniform(1, 10), 2);
        let out = run_beta_star(&g, NodeId::new(0), 6, DelayModel::WorstCase, 0).unwrap();
        assert_eq!(out.stats.min_pulses(), 6);
        assert!(out.stats.is_monotone());
    }

    #[test]
    fn beta_star_delay_is_tree_round_trip_not_w() {
        // Heavy chords make W large, but β* never touches them: its delay
        // is bounded by a light-tree round trip.
        let g = generators::heavy_chord_cycle(12, 500);
        let p = CostParams::of(&g);
        let out = run_beta_star(&g, NodeId::new(0), 5, DelayModel::WorstCase, 0).unwrap();
        let delay = out.stats.max_pulse_delay() as u128;
        assert!(
            delay <= 2 * p.weighted_diameter.get() + 2,
            "β* delay {delay} > 2·D̂"
        );
        assert!(delay < p.max_weight.get() as u128, "β* should beat W here");
    }

    #[test]
    fn beta_star_message_cost_per_pulse_is_two_tree_sweeps() {
        let g = generators::path(6, |_| 4);
        let pulses = 5;
        let out = run_beta_star(&g, NodeId::new(0), pulses, DelayModel::WorstCase, 0).unwrap();
        // per pulse transition: n-1 Done + n-1 Next messages.
        assert_eq!(out.cost.messages, 2 * 5 * (pulses - 1));
    }

    #[test]
    fn beta_star_under_random_delays() {
        let g = generators::connected_gnp(14, 0.3, generators::WeightDist::Uniform(1, 20), 3);
        for seed in 0..3 {
            let out = run_beta_star(&g, NodeId::new(2), 4, DelayModel::Uniform, seed).unwrap();
            assert_eq!(out.stats.min_pulses(), 4);
        }
    }
}
