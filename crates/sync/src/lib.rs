#![deny(missing_docs)]

//! Synchronizers for weighted networks — the core contribution of
//! *Cost-Sensitive Analysis of Communication Protocols*.
//!
//! Two related but distinct problems (Sections 3 and 4 of the paper):
//!
//! * **Clock synchronization** ([`clock`]): generate an unbounded stream
//!   of pulses at every vertex such that pulse `p` is generated only
//!   after all neighbors generated pulse `p − 1`. Quality measure: the
//!   *pulse delay* — the worst time between successive pulses at a
//!   vertex. Three synchronizers are implemented:
//!   α\* (`O(W)` delay), β\* (global-tree, `O(D̂)` delay) and
//!   γ\* (tree edge-cover, `O(d·log² n)` delay).
//!
//! * **Network synchronization** ([`net`]): run an arbitrary *synchronous*
//!   protocol — written against the lock-step weighted semantics of
//!   [`csp_sim::sync`] — on an *asynchronous* network, preserving its
//!   outputs. Synchronizer γ_w combines the protocol normalization of
//!   Lemma 4.5 (×4 slowdown, power-of-two weights, aligned sends) with
//!   per-weight-level cluster synchronizers, at amortized overhead
//!   `C(γ_w) = O(k·n·log n)` and `T(γ_w) = O(log_k n·log n)` per pulse.
//!   The naive α_w (`Θ(Ê)` comm, `Θ(W)` time per pulse) and tree-based
//!   β_w (`Θ(V̂)` comm, `Θ(D̂)` time) baselines are included for
//!   comparison.
//!
//! # Example
//!
//! Measure the pulse delay of the clock synchronizers on a network where
//! heavy links have light detours (`d ≪ W`):
//!
//! ```
//! use csp_graph::generators;
//! use csp_sim::DelayModel;
//! use csp_sync::clock::{run_alpha_star, run_gamma_star};
//!
//! # fn main() -> Result<(), csp_sim::SimError> {
//! let g = generators::heavy_chord_cycle(12, 1_000);
//! let alpha = run_alpha_star(&g, 4, DelayModel::WorstCase, 0)?;
//! let gamma = run_gamma_star(&g, 4, DelayModel::WorstCase, 0)?;
//! // α* pays the heavy chord on every pulse; γ* routes safety through
//! // the tree edge-cover and beats it by orders of magnitude.
//! assert!(gamma.stats.max_pulse_delay() < alpha.stats.max_pulse_delay());
//! # Ok(())
//! # }
//! ```

pub mod clock;
pub mod net;

pub use clock::{run_alpha_star, run_beta_star, run_gamma_star, ClockOutcome, PulseStats};
pub use net::{run_synchronized, GammaWConfig, HostedRun};
