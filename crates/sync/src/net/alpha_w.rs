//! The naive network synchronizer α_w — the baseline γ_w is measured
//! against.
//!
//! Section 4.1 of the paper explains why the straightforward approach is
//! inefficient: "cleaning the links requires time proportional to the
//! maximal link weight `W`, which would therefore dictate the
//! multiplicative overhead of the synchronization". α_w is that
//! approach, made concrete:
//!
//! * every vertex executes hosted pulses one at a time;
//! * after pulse `q`, it waits for acknowledgments of its own pulse-`q`
//!   messages, then exchanges `Safe(q)` tokens with **all** neighbors
//!   over the direct edges;
//! * pulse `q + 1` starts when all neighbors are known safe.
//!
//! Because the hosted message sent at pulse `q` on edge `e` arrives (and
//! is acknowledged) before the sender's `Safe(q)` is processed at the
//! other end, first-arrival semantics per pulse are preserved; the
//! hosted message is delivered at the receiver's first pulse `≥` its
//! sender's pulse + nothing — α_w simulates the **unit-delay**
//! synchronous abstraction (every message crosses in one pulse),
//! which is the classical synchronizer semantics of \[Awe85a]. Per pulse
//! it costs `Θ(Ê)` communication and `Θ(W)` time — both terrible on
//! heavy-tailed weights, which is the paper's point.
//!
//! Use it to host protocols written against unit-delay synchronous
//! semantics (e.g. Bellman–Ford-style iteration), or purely as the
//! overhead baseline in benchmarks.

use csp_graph::{NodeId, WeightedGraph};
use csp_sim::sync::{SyncContext, SyncProcess};
use csp_sim::{Context, CostClass, CostReport, DelayModel, Process, SimError, Simulator};
use std::collections::BTreeMap;

/// Messages of the α_w host.
#[derive(Clone, Debug)]
pub enum AlphaMsg<M> {
    /// A hosted payload sent at the sender's pulse `sent`.
    Hosted {
        /// The hosted message.
        msg: M,
        /// Sender's pulse.
        sent: u64,
    },
    /// Acknowledgment of one hosted payload.
    Ack,
    /// The sender is safe with respect to pulse `pulse`.
    Safe {
        /// The completed pulse.
        pulse: u64,
    },
}

/// The α_w host process wrapping one hosted [`SyncProcess`] instance.
///
/// The hosted protocol sees *unit-delay* synchronous semantics: a
/// message sent at pulse `q` is delivered at pulse `q + 1`, regardless
/// of the edge weight. (Contrast with γ_w, which simulates the weighted
/// delay-`w(e)` semantics.)
#[derive(Debug)]
pub struct AlphaWHost<P: SyncProcess> {
    hosted: P,
    until_pulse: u64,
    pulse: u64,
    degree: usize,
    /// Hosted messages buffered for the next pulse.
    buffered: BTreeMap<u64, Vec<(NodeId, P::Msg)>>,
    /// Outstanding acknowledgments for this pulse's sends.
    ack_outstanding: u64,
    /// Whether this vertex already announced safety for `pulse`.
    safe_sent: bool,
    /// Safe tokens received per pulse.
    safe_received: BTreeMap<u64, usize>,
    wake_at: Option<u64>,
    hosted_finished: bool,
}

impl<P: SyncProcess> AlphaWHost<P> {
    /// Creates the host for one vertex, simulating pulses
    /// `0..=until_pulse`.
    pub fn new(hosted: P, degree: usize, until_pulse: u64) -> Self {
        AlphaWHost {
            hosted,
            until_pulse,
            pulse: 0,
            degree,
            buffered: BTreeMap::new(),
            ack_outstanding: 0,
            safe_sent: false,
            safe_received: BTreeMap::new(),
            wake_at: None,
            hosted_finished: false,
        }
    }

    /// The hosted protocol state.
    pub fn hosted(&self) -> &P {
        &self.hosted
    }

    /// Hosted messages still buffered past the horizon.
    pub fn undelivered(&self) -> usize {
        self.buffered.values().map(Vec::len).sum()
    }

    fn run_pulse(&mut self, ctx: &mut Context<'_, AlphaMsg<P::Msg>>) {
        let q = self.pulse;
        let inbox = self.buffered.remove(&q).unwrap_or_default();
        let woken = self.wake_at == Some(q);
        if q == 0 || !inbox.is_empty() || woken {
            if woken {
                self.wake_at = None;
            }
            let g = ctx.graph();
            let mut sctx: SyncContext<'_, P::Msg> = SyncContext::host(ctx.self_id(), q, g);
            self.hosted.on_pulse(q, &inbox, &mut sctx);
            let out = sctx.drain();
            assert!(
                out.timers.is_empty() && out.cancels.is_empty(),
                "synchronizer hosts do not forward timers; use wake_at"
            );
            if out.finished {
                self.hosted_finished = true;
            }
            if let Some(w) = out.wake_at {
                self.wake_at = Some(match self.wake_at {
                    Some(e) => e.min(w),
                    None => w,
                });
            }
            for (to, msg) in out.sends {
                self.ack_outstanding += 1;
                ctx.send(to, AlphaMsg::Hosted { msg, sent: q });
            }
        }
        self.safe_sent = false;
        self.maybe_announce_safe(ctx);
    }

    fn maybe_announce_safe(&mut self, ctx: &mut Context<'_, AlphaMsg<P::Msg>>) {
        if self.safe_sent || self.ack_outstanding > 0 {
            return;
        }
        self.safe_sent = true;
        let q = self.pulse;
        let targets: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
        for u in targets {
            ctx.send_class(u, AlphaMsg::Safe { pulse: q }, CostClass::Synchronizer);
        }
        self.maybe_advance(ctx);
    }

    fn maybe_advance(&mut self, ctx: &mut Context<'_, AlphaMsg<P::Msg>>) {
        while self.pulse < self.until_pulse
            && self.safe_sent
            && self.safe_received.get(&self.pulse).copied().unwrap_or(0) == self.degree
        {
            self.safe_received.remove(&self.pulse);
            self.pulse += 1;
            self.run_pulse(ctx);
        }
    }
}

impl<P: SyncProcess> Process for AlphaWHost<P> {
    type Msg = AlphaMsg<P::Msg>;

    fn on_start(&mut self, ctx: &mut Context<'_, AlphaMsg<P::Msg>>) {
        self.run_pulse(ctx);
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: AlphaMsg<P::Msg>,
        ctx: &mut Context<'_, AlphaMsg<P::Msg>>,
    ) {
        match msg {
            AlphaMsg::Hosted { msg, sent } => {
                ctx.send_class(from, AlphaMsg::Ack, CostClass::Synchronizer);
                self.buffered.entry(sent + 1).or_default().push((from, msg));
            }
            AlphaMsg::Ack => {
                self.ack_outstanding -= 1;
                self.maybe_announce_safe(ctx);
            }
            AlphaMsg::Safe { pulse } => {
                *self.safe_received.entry(pulse).or_insert(0) += 1;
                self.maybe_advance(ctx);
            }
        }
    }
}

/// Runs a unit-delay synchronous protocol on the asynchronous network
/// under the naive synchronizer α_w, simulating pulses
/// `0..=until_pulse`.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if hosted messages remain buffered past the horizon.
pub fn run_synchronized_alpha<P, F>(
    g: &WeightedGraph,
    until_pulse: u64,
    delay: DelayModel,
    seed: u64,
    mut make: F,
) -> Result<super::HostedRun<P>, SimError>
where
    P: SyncProcess,
    F: FnMut(NodeId, &WeightedGraph) -> P,
{
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(|v, g| AlphaWHost::new(make(v, g), g.degree(v), until_pulse))?;
    let undelivered: usize = run.states.iter().map(AlphaWHost::undelivered).sum();
    assert_eq!(
        undelivered, 0,
        "until_pulse={until_pulse} too small: {undelivered} hosted messages undelivered"
    );
    let states = run.states.into_iter().map(|h| h.hosted).collect();
    Ok(super::HostedRun {
        states,
        cost: run.cost,
        pulses: until_pulse,
    })
}

/// The per-pulse overhead baseline: runs an idle protocol for `pulses`
/// pulses and reports the synchronizer traffic and completion time.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn alpha_w_overhead(
    g: &WeightedGraph,
    pulses: u64,
    delay: DelayModel,
    seed: u64,
) -> Result<CostReport, SimError> {
    #[derive(Clone, Debug)]
    struct Idle {
        until: u64,
    }
    impl SyncProcess for Idle {
        type Msg = ();
        fn on_pulse(&mut self, pulse: u64, _i: &[(NodeId, ())], ctx: &mut SyncContext<'_, ()>) {
            if pulse == 0 && self.until > 0 {
                ctx.wake_at(self.until);
            } else if pulse >= self.until {
                ctx.finish();
            }
        }
    }
    let run = run_synchronized_alpha(g, pulses, delay, seed, |_, _| Idle { until: pulses })?;
    Ok(run.cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::{generators, Cost};

    /// Unit-delay BFS flood: first-hearing pulse = hop distance.
    #[derive(Clone, Debug)]
    struct HopFlood {
        heard_at: Option<u64>,
    }

    impl SyncProcess for HopFlood {
        type Msg = ();
        fn on_pulse(&mut self, pulse: u64, inbox: &[(NodeId, ())], ctx: &mut SyncContext<'_, ()>) {
            let fire = (pulse == 0 && ctx.self_id() == NodeId::new(0))
                || (!inbox.is_empty() && self.heard_at.is_none());
            if fire {
                self.heard_at = Some(pulse);
                let targets: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
                for u in targets {
                    ctx.send(u, ());
                }
            }
            if pulse == 0 {
                ctx.finish();
            }
        }
    }

    #[test]
    fn alpha_w_realizes_unit_delay_semantics() {
        let g = generators::heavy_chord_cycle(10, 50);
        let hops = csp_graph::algo::hop_distances(&g, NodeId::new(0));
        let max_hops = hops.iter().map(|h| h.unwrap() as u64).max().unwrap();
        for seed in 0..3 {
            let run =
                run_synchronized_alpha(&g, max_hops + 2, DelayModel::Uniform, seed, |_, _| {
                    HopFlood { heard_at: None }
                })
                .unwrap();
            for v in g.nodes() {
                assert_eq!(
                    run.states[v.index()].heard_at,
                    Some(hops[v.index()].unwrap() as u64),
                    "hop mismatch at {v} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn alpha_w_overhead_is_e_hat_per_pulse_and_w_time() {
        let g = generators::heavy_chord_cycle(12, 400);
        let p = csp_graph::params::CostParams::of(&g);
        let pulses = 5;
        let cost = alpha_w_overhead(&g, pulses, DelayModel::WorstCase, 0).unwrap();
        // Safe tokens: one per edge direction per pulse, including the
        // final pulse's announcement → 2·Ê·(pulses + 1).
        assert_eq!(
            cost.comm_of(CostClass::Synchronizer),
            p.total_weight * (2 * (pulses as u128 + 1))
        );
        // Time per pulse is pinned to W.
        assert!(
            Cost::new(cost.completion.get() as u128)
                >= Cost::new(p.max_weight.get() as u128 * pulses as u128),
            "α_w must pay Θ(W) per pulse"
        );
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn alpha_w_detects_insufficient_horizon() {
        let g = generators::path(6, |_| 3);
        let _ = run_synchronized_alpha(&g, 1, DelayModel::WorstCase, 0, |_, _| HopFlood {
            heard_at: None,
        });
    }
}
