//! Static per-level structures of synchronizer γ_w.
//!
//! The normalized network's edges are partitioned into *weight classes*:
//! class `i` holds the edges whose rounded weight `power(w(e))` equals
//! `2^i`. (The paper phrases levels via divisibility — `E_i` = edges with
//! weight divisible by `2^i` — but meters each message's arrival through
//! the synchronizer of its own weight class; using exact classes avoids
//! making the light levels wait on heavy acknowledgments, which is the
//! whole point of the level decomposition.)
//!
//! Each class subgraph is partitioned with Awerbuch's ball-growing
//! [`ball_partition`](csp_graph::cover::ball_partition) (parameter `k`),
//! yielding per-cluster trees with leaders and one preferred edge per
//! adjacent cluster pair — the structure synchronizer γ sweeps once per
//! super-pulse of that level.

use csp_graph::cover::ball_partition;
use csp_graph::{NodeId, WeightedGraph};

/// The weight-class level of an edge: `log₂ power(w)`.
pub fn edge_level(w: u64) -> u32 {
    w.next_power_of_two().trailing_zeros()
}

/// The smallest multiple of `m` that is `≥ x`.
pub fn next_multiple(x: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    x.div_ceil(m) * m
}

/// Static structure of one weight class.
#[derive(Debug)]
pub struct LevelLayout {
    /// Class exponent `i` (edges of rounded weight `2^i`).
    pub exp: u32,
    /// `2^i`.
    pub width: u64,
    /// Whether each vertex has class-`i` edges (non-participants confirm
    /// every super-pulse trivially, with no messages).
    pub participates: Vec<bool>,
    /// Cluster-tree parent of each participating vertex (`None` for
    /// leaders and non-participants).
    pub parent: Vec<Option<NodeId>>,
    /// Cluster-tree children.
    pub children: Vec<Vec<NodeId>>,
    /// Whether each vertex leads its cluster.
    pub is_leader: Vec<bool>,
    /// For leaders: the number of adjacent clusters.
    pub nbr_cluster_count: Vec<usize>,
    /// Per vertex: remote endpoints of incident preferred edges.
    pub preferred_of: Vec<Vec<NodeId>>,
}

impl LevelLayout {
    /// Builds the class-`exp` layout of `g` with partition parameter `k`.
    pub fn build(g: &WeightedGraph, exp: u32, k: usize) -> Self {
        let n = g.node_count();
        let width = 1u64 << exp;
        let sub = g.edge_subgraph(|_, e| edge_level(e.weight().get()) == exp);
        let partition = ball_partition(&sub, k);
        let mut participates = vec![false; n];
        for v in sub.nodes() {
            participates[v.index()] = sub.degree(v) > 0;
        }
        let mut parent = vec![None; n];
        let mut children = vec![Vec::new(); n];
        let mut is_leader = vec![false; n];
        for tree in &partition.trees {
            is_leader[tree.root().index()] = true;
            for v in tree.members() {
                parent[v.index()] = tree.parent(v).map(|(p, _, _)| p);
                children[v.index()] = tree.children_lists()[v.index()]
                    .iter()
                    .map(|&(c, _)| c)
                    .collect();
            }
        }
        let mut nbr_clusters = vec![std::collections::BTreeSet::new(); partition.len()];
        let mut preferred_of = vec![Vec::new(); n];
        for &(e, a, b) in &partition.preferred {
            nbr_clusters[a].insert(b);
            nbr_clusters[b].insert(a);
            // NOTE: `e` indexes the class *subgraph*, whose edge ids are
            // renumbered — resolve endpoints against `sub`, not `g`.
            let (u, v) = sub.edge(e).endpoints();
            preferred_of[u.index()].push(v);
            preferred_of[v.index()].push(u);
        }
        let mut nbr_cluster_count = vec![0; n];
        for (c, tree) in partition.trees.iter().enumerate() {
            nbr_cluster_count[tree.root().index()] = nbr_clusters[c].len();
        }
        LevelLayout {
            exp,
            width,
            participates,
            parent,
            children,
            is_leader,
            nbr_cluster_count,
            preferred_of,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::generators;

    #[test]
    fn edge_levels() {
        assert_eq!(edge_level(1), 0);
        assert_eq!(edge_level(2), 1);
        assert_eq!(edge_level(3), 2); // power(3) = 4
        assert_eq!(edge_level(4), 2);
        assert_eq!(edge_level(5), 3);
        assert_eq!(edge_level(1024), 10);
    }

    #[test]
    fn next_multiples() {
        assert_eq!(next_multiple(0, 4), 0);
        assert_eq!(next_multiple(1, 4), 4);
        assert_eq!(next_multiple(4, 4), 4);
        assert_eq!(next_multiple(9, 4), 12);
        assert_eq!(next_multiple(7, 1), 7);
    }

    #[test]
    fn layout_partitions_each_class() {
        // weights 1 and 5 → classes 0 and 3.
        let mut b = csp_graph::GraphBuilder::new(4);
        b.edge(0, 1, 1).edge(1, 2, 5).edge(2, 3, 1);
        let g = b.build().unwrap();
        let l0 = LevelLayout::build(&g, 0, 2);
        assert!(l0.participates[0] && l0.participates[1]);
        assert!(l0.participates[2] && l0.participates[3]);
        let l3 = LevelLayout::build(&g, 3, 2);
        assert!(!l3.participates[0] && l3.participates[1] && l3.participates[2]);
        assert!(!l3.participates[3]);
    }

    #[test]
    fn leaders_know_neighbor_cluster_counts() {
        let g = generators::cycle(9, |_| 1);
        let l = LevelLayout::build(&g, 0, 3);
        let leaders: Vec<usize> = (0..9).filter(|&v| l.is_leader[v]).collect();
        assert!(!leaders.is_empty());
        // Sum of leader neighbor counts = 2 × number of preferred pairs.
        let total: usize = leaders.iter().map(|&v| l.nbr_cluster_count[v]).sum();
        let pairs: usize = l.preferred_of.iter().map(Vec::len).sum::<usize>() / 2;
        assert_eq!(total, 2 * pairs);
    }
}
