//! The tree network synchronizer β_w — the second baseline for γ_w.
//!
//! Synchronizer β of \[Awe85a], lifted to the weighted setting: one
//! global spanning tree with a leader; after each pulse, safety reports
//! (all own messages acknowledged) convergecast to the leader, which
//! broadcasts permission for the next pulse. Per pulse this costs one
//! tree round-trip — `O(w(T))` weighted communication (frugal!) but
//! `Θ(depth(T)) = Ω(D̂)` time, regardless of how local the traffic is.
//! Like [α_w](super::alpha_w), it provides the *unit-delay* synchronous
//! abstraction.
//!
//! The three-way comparison α_w / β_w / γ_w per pulse:
//!
//! | | communication | time |
//! |---|---|---|
//! | α_w | `Θ(Ê)` | `Θ(W)` |
//! | β_w | `Θ(V̂)` | `Θ(D̂)` |
//! | γ_w | `O(k·n·log n)` | `O(log_k n·log n)` |

use csp_graph::algo::shortest_path_tree;
use csp_graph::{NodeId, RootedTree, WeightedGraph};
use csp_sim::sync::{SyncContext, SyncProcess};
use csp_sim::{Context, CostClass, CostReport, DelayModel, Process, SimError, Simulator};
use std::collections::BTreeMap;

/// Messages of the β_w host.
#[derive(Clone, Debug)]
pub enum BetaMsg<M> {
    /// A hosted payload sent at the sender's pulse `sent`.
    Hosted {
        /// The hosted message.
        msg: M,
        /// Sender's pulse.
        sent: u64,
    },
    /// Acknowledgment of one hosted payload.
    Ack,
    /// Subtree safe for `pulse` (convergecast).
    SafeUp {
        /// The completed pulse.
        pulse: u64,
    },
    /// Everyone safe; start `pulse` (broadcast).
    Next {
        /// The pulse to start.
        pulse: u64,
    },
}

/// The β_w host process wrapping one hosted [`SyncProcess`] instance.
#[derive(Debug)]
pub struct BetaWHost<P: SyncProcess> {
    hosted: P,
    until_pulse: u64,
    pulse: u64,
    /// Tree position.
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    buffered: BTreeMap<u64, Vec<(NodeId, P::Msg)>>,
    ack_outstanding: u64,
    /// Children's SafeUp reports per pulse.
    safe_up: BTreeMap<u64, usize>,
    reported: bool,
    wake_at: Option<u64>,
}

impl<P: SyncProcess> BetaWHost<P> {
    /// Creates the host for one vertex over the shared tree.
    pub fn new(v: NodeId, tree: &RootedTree, hosted: P, until_pulse: u64) -> Self {
        BetaWHost {
            hosted,
            until_pulse,
            pulse: 0,
            parent: tree.parent(v).map(|(p, _, _)| p),
            children: tree.children_lists()[v.index()]
                .iter()
                .map(|&(c, _)| c)
                .collect(),
            buffered: BTreeMap::new(),
            ack_outstanding: 0,
            safe_up: BTreeMap::new(),
            reported: false,
            wake_at: None,
        }
    }

    /// The hosted protocol state.
    pub fn hosted(&self) -> &P {
        &self.hosted
    }

    /// Hosted messages still buffered past the horizon.
    pub fn undelivered(&self) -> usize {
        self.buffered.values().map(Vec::len).sum()
    }

    fn run_pulse(&mut self, ctx: &mut Context<'_, BetaMsg<P::Msg>>) {
        let q = self.pulse;
        let inbox = self.buffered.remove(&q).unwrap_or_default();
        let woken = self.wake_at == Some(q);
        if q == 0 || !inbox.is_empty() || woken {
            if woken {
                self.wake_at = None;
            }
            let g = ctx.graph();
            let mut sctx: SyncContext<'_, P::Msg> = SyncContext::host(ctx.self_id(), q, g);
            self.hosted.on_pulse(q, &inbox, &mut sctx);
            let out = sctx.drain();
            assert!(
                out.timers.is_empty() && out.cancels.is_empty(),
                "synchronizer hosts do not forward timers; use wake_at"
            );
            if let Some(w) = out.wake_at {
                self.wake_at = Some(match self.wake_at {
                    Some(e) => e.min(w),
                    None => w,
                });
            }
            for (to, msg) in out.sends {
                self.ack_outstanding += 1;
                ctx.send(to, BetaMsg::Hosted { msg, sent: q });
            }
        }
        self.reported = false;
        self.maybe_report(ctx);
    }

    /// Convergecast step: report safety once self + subtree are safe.
    fn maybe_report(&mut self, ctx: &mut Context<'_, BetaMsg<P::Msg>>) {
        if self.reported || self.ack_outstanding > 0 {
            return;
        }
        let q = self.pulse;
        if self.safe_up.get(&q).copied().unwrap_or(0) != self.children.len() {
            return;
        }
        self.reported = true;
        self.safe_up.remove(&q);
        match self.parent {
            Some(p) => {
                ctx.send_class(p, BetaMsg::SafeUp { pulse: q }, CostClass::Synchronizer);
            }
            None => self.broadcast_next(ctx),
        }
    }

    /// Leader: everyone is safe; start the next pulse everywhere.
    fn broadcast_next(&mut self, ctx: &mut Context<'_, BetaMsg<P::Msg>>) {
        if self.pulse >= self.until_pulse {
            return;
        }
        let next = self.pulse + 1;
        for c in self.children.clone() {
            ctx.send_class(c, BetaMsg::Next { pulse: next }, CostClass::Synchronizer);
        }
        self.pulse = next;
        self.run_pulse(ctx);
    }

    fn start_pulse(&mut self, pulse: u64, ctx: &mut Context<'_, BetaMsg<P::Msg>>) {
        for c in self.children.clone() {
            ctx.send_class(c, BetaMsg::Next { pulse }, CostClass::Synchronizer);
        }
        self.pulse = pulse;
        self.run_pulse(ctx);
    }
}

impl<P: SyncProcess> Process for BetaWHost<P> {
    type Msg = BetaMsg<P::Msg>;

    fn on_start(&mut self, ctx: &mut Context<'_, BetaMsg<P::Msg>>) {
        self.run_pulse(ctx);
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: BetaMsg<P::Msg>,
        ctx: &mut Context<'_, BetaMsg<P::Msg>>,
    ) {
        match msg {
            BetaMsg::Hosted { msg, sent } => {
                ctx.send_class(from, BetaMsg::Ack, CostClass::Synchronizer);
                self.buffered.entry(sent + 1).or_default().push((from, msg));
            }
            BetaMsg::Ack => {
                self.ack_outstanding -= 1;
                self.maybe_report(ctx);
            }
            BetaMsg::SafeUp { pulse } => {
                *self.safe_up.entry(pulse).or_insert(0) += 1;
                self.maybe_report(ctx);
            }
            BetaMsg::Next { pulse } => self.start_pulse(pulse, ctx),
        }
    }
}

/// Runs a unit-delay synchronous protocol under β_w over the SPT rooted
/// at `leader`, simulating pulses `0..=until_pulse`.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected, `leader` is out of range, or hosted
/// messages remain buffered past the horizon.
pub fn run_synchronized_beta<P, F>(
    g: &WeightedGraph,
    leader: NodeId,
    until_pulse: u64,
    delay: DelayModel,
    seed: u64,
    mut make: F,
) -> Result<super::HostedRun<P>, SimError>
where
    P: SyncProcess,
    F: FnMut(NodeId, &WeightedGraph) -> P,
{
    g.check_node(leader);
    let tree = shortest_path_tree(g, leader);
    assert!(tree.is_spanning(), "β_w needs a connected graph");
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(|v, g| BetaWHost::new(v, &tree, make(v, g), until_pulse))?;
    let undelivered: usize = run.states.iter().map(BetaWHost::undelivered).sum();
    assert_eq!(
        undelivered, 0,
        "until_pulse={until_pulse} too small: {undelivered} hosted messages undelivered"
    );
    let states = run.states.into_iter().map(|h| h.hosted).collect();
    Ok(super::HostedRun {
        states,
        cost: run.cost,
        pulses: until_pulse,
    })
}

/// Per-pulse overhead baseline: an idle protocol for `pulses` pulses.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn beta_w_overhead(
    g: &WeightedGraph,
    leader: NodeId,
    pulses: u64,
    delay: DelayModel,
    seed: u64,
) -> Result<CostReport, SimError> {
    #[derive(Clone, Debug)]
    struct Idle {
        until: u64,
    }
    impl SyncProcess for Idle {
        type Msg = ();
        fn on_pulse(&mut self, pulse: u64, _i: &[(NodeId, ())], ctx: &mut SyncContext<'_, ()>) {
            if pulse == 0 && self.until > 0 {
                ctx.wake_at(self.until);
            } else if pulse >= self.until {
                ctx.finish();
            }
        }
    }
    let run = run_synchronized_beta(g, leader, pulses, delay, seed, |_, _| Idle {
        until: pulses,
    })?;
    Ok(run.cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::params::CostParams;
    use csp_graph::{generators, Cost};

    #[derive(Clone, Debug)]
    struct HopFlood {
        heard_at: Option<u64>,
    }

    impl SyncProcess for HopFlood {
        type Msg = ();
        fn on_pulse(&mut self, pulse: u64, inbox: &[(NodeId, ())], ctx: &mut SyncContext<'_, ()>) {
            let fire = (pulse == 0 && ctx.self_id() == NodeId::new(0))
                || (!inbox.is_empty() && self.heard_at.is_none());
            if fire {
                self.heard_at = Some(pulse);
                let targets: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
                for u in targets {
                    ctx.send(u, ());
                }
            }
            if pulse == 0 {
                ctx.finish();
            }
        }
    }

    #[test]
    fn beta_w_realizes_unit_delay_semantics() {
        let g = generators::heavy_chord_cycle(10, 70);
        let hops = csp_graph::algo::hop_distances(&g, NodeId::new(0));
        let max_hops = hops.iter().map(|h| h.unwrap() as u64).max().unwrap();
        for seed in 0..3 {
            let run = run_synchronized_beta(
                &g,
                NodeId::new(0),
                max_hops + 2,
                DelayModel::Uniform,
                seed,
                |_, _| HopFlood { heard_at: None },
            )
            .unwrap();
            for v in g.nodes() {
                assert_eq!(
                    run.states[v.index()].heard_at,
                    Some(hops[v.index()].unwrap() as u64),
                    "hop mismatch at {v} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn beta_w_overhead_is_tree_bound_not_e_hat() {
        // β_w's per-pulse communication is two tree sweeps — independent
        // of the heavy chords that dominate Ê.
        let g = generators::heavy_chord_cycle(16, 5_000);
        let p = CostParams::of(&g);
        let pulses = 6;
        let cost = beta_w_overhead(&g, NodeId::new(0), pulses, DelayModel::WorstCase, 0).unwrap();
        let per_pulse = cost.comm_of(CostClass::Synchronizer).get() / (pulses as u128 + 1);
        assert!(
            per_pulse < p.total_weight.get() / 4,
            "β_w per-pulse {per_pulse} should be far below Ê = {}",
            p.total_weight
        );
        // But per-pulse time is a tree round trip: ≥ D̂ on this family.
        let per_pulse_time = cost.completion.get() / pulses;
        assert!(
            Cost::new(per_pulse_time as u128) >= p.weighted_diameter,
            "β_w time/pulse {per_pulse_time} should be ≥ D̂ = {}",
            p.weighted_diameter
        );
    }

    #[test]
    fn alpha_and_beta_hosts_agree_on_outputs() {
        let g = generators::grid(3, 4, generators::WeightDist::Uniform(1, 9), 5);
        let hops = csp_graph::algo::hop_distances(&g, NodeId::new(0));
        let horizon = hops.iter().map(|h| h.unwrap() as u64).max().unwrap() + 2;
        let alpha = super::super::alpha_w::run_synchronized_alpha(
            &g,
            horizon,
            DelayModel::Uniform,
            3,
            |_, _| HopFlood { heard_at: None },
        )
        .unwrap();
        let beta = run_synchronized_beta(
            &g,
            NodeId::new(0),
            horizon,
            DelayModel::Uniform,
            3,
            |_, _| HopFlood { heard_at: None },
        )
        .unwrap();
        for v in g.nodes() {
            assert_eq!(
                alpha.states[v.index()].heard_at,
                beta.states[v.index()].heard_at
            );
        }
    }
}
