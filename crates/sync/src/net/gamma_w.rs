//! The γ_w host: executes a [`SyncProcess`] on an asynchronous network.
//!
//! # How the pieces of Section 4 fit together
//!
//! **Virtual clock.** Every vertex maintains a *virtual pulse* counter
//! `t`. The hosted protocol's original pulse `q` corresponds to `t = 4q`
//! (the ×4 slowdown of Lemma 4.5, Step 1).
//!
//! **Send alignment.** A hosted message sent at original pulse `q` over
//! an edge of original weight `w` and rounded weight `ŵ = power(w) = 2^i`
//! is physically transmitted at virtual pulse `next_ŵ(4q)` (Step 3:
//! sends on class-`i` edges happen only at multiples of `2^i`), and is
//! **buffered at the receiver until virtual pulse `4·(q + w)`** — i.e.
//! the hosted protocol processes it exactly at original pulse `q + w`,
//! so it observes the original synchronous network, message orders,
//! outputs and all. The ×4 slack guarantees the physical transmission
//! completes and is *confirmed* in time:
//! `next_ŵ(4q) + ŵ ≤ 4q + 2ŵ ≤ 4q + 4w ≤ 4(q + w)`.
//!
//! **Safety per weight class.** Every physical transmission is
//! acknowledged. After a vertex passes virtual pulse `c·2^i` (a level-`i`
//! *boundary*), it is **safe** for level-`i` super-pulse `c + 1` once the
//! class-`i` messages it sent at that boundary are all acknowledged
//! (Definition 4.1). Synchronizer γ of \[Awe85a] then confirms the
//! super-pulse on the class-`i` cluster partition: safety convergecasts
//! to each cluster leader, `ClusterSafe` broadcasts back, `NbrSafe`
//! crosses each preferred inter-cluster edge, `NbrUp` relays climb to the
//! leader, and a final `Go` broadcast marks the super-pulse *confirmed*.
//!
//! **Gating.** A vertex may execute virtual pulse `t` only when, for
//! every level `i` with `2^i | t` at which it participates, level-`i`
//! super-pulse `t/2^i` is confirmed. This is exactly the paper's
//! per-pulse condition ("pulse 24 waits for γ₀…γ₃ to carry pulses
//! 24, 12, 6, 3").
//!
//! **Cost.** Per virtual pulse, only the levels dividing it do any work,
//! and a level-`i` sweep costs `O(k)` messages per participating vertex
//! on class-`i` edges: amortized `C(γ_w) = O(k·n·log n)` communication
//! and `T(γ_w) = O(log_k n·log n)` time per pulse (Lemma 4.8).
//!
//! **Termination.** Synchronizers provide pulses; they do not detect the
//! hosted protocol's termination (that is itself a global-function
//! computation, Section 2). The caller supplies the number of original
//! pulses to simulate; the host panics if hosted messages remain
//! buffered past that horizon, so an insufficient horizon cannot pass
//! silently.

use super::layout::{edge_level, next_multiple, LevelLayout};
use csp_graph::{NodeId, WeightedGraph};
use csp_sim::sync::{SyncContext, SyncProcess};
use csp_sim::{Context, CostClass, CostReport, DelayModel, Process, SimError, Simulator};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration of synchronizer γ_w.
#[derive(Clone, Copy, Debug)]
pub struct GammaWConfig {
    /// Cluster partition parameter `k ≥ 2`: bigger `k` means fatter
    /// clusters — fewer inter-cluster confirmations (less time) at more
    /// intra-cluster traffic (more communication).
    pub k: usize,
}

impl GammaWConfig {
    /// Creates a configuration with partition parameter `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "partition parameter k must be at least 2");
        GammaWConfig { k }
    }
}

/// Messages of the γ_w host.
#[derive(Clone, Debug)]
pub enum HostMsg<M> {
    /// A hosted-protocol payload, to be processed at original pulse
    /// `proc`.
    Hosted {
        /// The hosted message.
        msg: M,
        /// Original processing pulse `q + w`.
        proc: u64,
    },
    /// Acknowledgment of a hosted payload on a class-`level` edge.
    Ack {
        /// Weight-class exponent.
        level: u32,
    },
    /// Safety convergecast toward the cluster leader.
    SafeUp {
        /// Weight-class exponent.
        level: u32,
        /// Super-pulse being confirmed.
        round: u64,
    },
    /// Whole-cluster safety, broadcast down the cluster tree.
    ClusterSafe {
        /// Weight-class exponent.
        level: u32,
        /// Super-pulse being confirmed.
        round: u64,
    },
    /// Cross-cluster safety notification over a preferred edge.
    NbrSafe {
        /// Weight-class exponent.
        level: u32,
        /// Super-pulse being confirmed.
        round: u64,
    },
    /// One neighboring cluster's safety, climbing to the leader.
    NbrUp {
        /// Weight-class exponent.
        level: u32,
        /// Super-pulse being confirmed.
        round: u64,
    },
    /// Super-pulse confirmed, broadcast down the cluster tree.
    Go {
        /// Weight-class exponent.
        level: u32,
        /// Super-pulse being confirmed.
        round: u64,
    },
}

/// Per-(level, round) sweep progress at one vertex.
#[derive(Clone, Debug, Default)]
struct Round {
    safe_up: usize,
    cluster_safe_seen: bool,
    nbr_up: usize,
    go: bool,
}

/// Dynamic per-level state at one vertex.
#[derive(Debug)]
struct LevelState {
    /// Highest confirmed super-pulse.
    confirmed: u64,
    /// Highest boundary super-pulse executed (sends dispatched).
    boundary: u64,
    /// Unacknowledged class sends from the last boundary.
    ack_outstanding: u64,
    /// Sweep progress per round.
    rounds: BTreeMap<u64, Round>,
}

impl LevelState {
    fn new() -> Self {
        LevelState {
            confirmed: 0,
            boundary: 0,
            ack_outstanding: 0,
            rounds: BTreeMap::new(),
        }
    }
}

/// The γ_w host process wrapping one hosted [`SyncProcess`] instance.
#[derive(Debug)]
pub struct GammaWHost<P: SyncProcess> {
    hosted: P,
    layouts: Arc<Vec<LevelLayout>>,
    /// Virtual-pulse horizon (`4 × until_pulse`).
    until_t: u64,
    /// Current virtual pulse (last executed).
    t: u64,
    /// Hosted messages buffered for future processing pulses.
    buffered: BTreeMap<u64, Vec<(NodeId, P::Msg)>>,
    /// Outbound hosted messages awaiting their aligned transmission
    /// pulse: `t_send -> [(to, msg, proc)]`.
    pending: BTreeMap<u64, Vec<(NodeId, P::Msg, u64)>>,
    /// Hosted wake-up request (original pulses).
    wake_at: Option<u64>,
    /// Hosted protocol declared local termination.
    hosted_finished: bool,
    /// Per-level synchronizer state (parallel to `layouts`).
    levels: Vec<LevelState>,
}

impl<P: SyncProcess> GammaWHost<P> {
    /// Creates a host for one vertex. Most callers should use
    /// [`run_synchronized`]; this is public for custom hosting setups and
    /// diagnostics.
    pub fn new(hosted: P, layouts: Arc<Vec<LevelLayout>>, until_pulse: u64) -> Self {
        let levels: Vec<LevelState> = layouts.iter().map(|_| LevelState::new()).collect();
        GammaWHost {
            hosted,
            layouts,
            until_t: until_pulse.saturating_mul(4),
            t: 0,
            buffered: BTreeMap::new(),
            pending: BTreeMap::new(),
            wake_at: None,
            hosted_finished: false,
            levels,
        }
    }

    /// The hosted protocol state (for extraction after the run).
    pub fn hosted(&self) -> &P {
        &self.hosted
    }

    /// Hosted messages still buffered — must be empty after a run with a
    /// sufficient pulse horizon.
    pub fn undelivered(&self) -> usize {
        self.buffered.values().map(Vec::len).sum()
    }

    /// Whether the hosted protocol declared local termination.
    pub fn hosted_finished(&self) -> bool {
        self.hosted_finished
    }

    /// The last executed virtual pulse (diagnostics).
    pub fn virtual_pulse(&self) -> u64 {
        self.t
    }

    /// Processing pulses of still-buffered hosted messages (diagnostics).
    pub fn buffered_pulses(&self) -> Vec<u64> {
        self.buffered.keys().copied().collect()
    }

    /// Per-level `(exponent, confirmed super-pulse, outstanding acks)`
    /// (diagnostics).
    pub fn level_progress(&self) -> Vec<(u32, u64, u64)> {
        self.layouts
            .iter()
            .zip(self.levels.iter())
            .map(|(l, s)| (l.exp, s.confirmed, s.ack_outstanding))
            .collect()
    }

    fn level_index(&self, exp: u32) -> usize {
        self.layouts
            .iter()
            .position(|l| l.exp == exp)
            .expect("every edge class has a layout")
    }

    /// Runs the hosted protocol at original pulse `q` if it is due, and
    /// queues its sends at their aligned transmission pulses.
    fn host_pulse(&mut self, q: u64, ctx: &mut Context<'_, HostMsg<P::Msg>>) {
        let inbox = self.buffered.remove(&q).unwrap_or_default();
        let woken = self.wake_at == Some(q);
        if q != 0 && inbox.is_empty() && !woken {
            return;
        }
        if woken {
            self.wake_at = None;
        }
        let g = ctx.graph();
        let me = ctx.self_id();
        let mut sctx: SyncContext<'_, P::Msg> = SyncContext::host(me, q, g);
        self.hosted.on_pulse(q, &inbox, &mut sctx);
        let out = sctx.drain();
        assert!(
            out.timers.is_empty() && out.cancels.is_empty(),
            "synchronizer hosts do not forward timers; use wake_at"
        );
        if out.finished {
            self.hosted_finished = true;
        }
        if let Some(w) = out.wake_at {
            self.wake_at = Some(match self.wake_at {
                Some(existing) => existing.min(w),
                None => w,
            });
        }
        for (to, msg) in out.sends {
            let eid = g.edge_between(me, to).expect("hosted sends to neighbors");
            let w = g.weight(eid).get();
            let width = 1u64 << edge_level(w);
            let t_send = next_multiple(4 * q, width);
            let proc = q + w;
            self.pending
                .entry(t_send)
                .or_default()
                .push((to, msg, proc));
        }
    }

    /// Executes virtual pulse `t`: hosted work, aligned transmissions,
    /// and the start of each divisible level's safety round.
    fn execute_pulse(&mut self, t: u64, ctx: &mut Context<'_, HostMsg<P::Msg>>) {
        if t.is_multiple_of(4) {
            self.host_pulse(t / 4, ctx);
        }
        // Physical transmissions aligned at t.
        if let Some(sends) = self.pending.remove(&t) {
            let g = ctx.graph();
            for (to, msg, proc) in sends {
                let eid = g
                    .edge_between(ctx.self_id(), to)
                    .expect("hosted sends to neighbors");
                let exp = edge_level(g.weight(eid).get());
                let li = self.level_index(exp);
                self.levels[li].ack_outstanding += 1;
                ctx.send(to, HostMsg::Hosted { msg, proc });
            }
        }
        // Start the safety round of every level whose boundary this is.
        for li in 0..self.layouts.len() {
            let width = self.layouts[li].width;
            if t.is_multiple_of(width) && self.layouts[li].participates[ctx.self_id().index()] {
                let c = t / width;
                self.levels[li].boundary = self.levels[li].boundary.max(c + 1);
                self.maybe_safe_up(li, c + 1, ctx);
            }
        }
    }

    /// Safety convergecast step for level `li`, round `round`.
    fn maybe_safe_up(&mut self, li: usize, round: u64, ctx: &mut Context<'_, HostMsg<P::Msg>>) {
        let me = ctx.self_id();
        let layout = &self.layouts[li];
        let state = &mut self.levels[li];
        if state.boundary < round || state.ack_outstanding > 0 {
            return;
        }
        let children = layout.children[me.index()].len();
        let round_state = state.rounds.entry(round).or_default();
        if round_state.safe_up != children {
            return;
        }
        let level = layout.exp;
        match layout.parent[me.index()] {
            Some(p) => {
                ctx.send_class(p, HostMsg::SafeUp { level, round }, CostClass::Synchronizer);
            }
            None => self.on_cluster_safe(li, round, ctx),
        }
    }

    /// Whole-cluster safety: broadcast down, notify neighbor clusters,
    /// and re-check the leader's `Go` condition.
    fn on_cluster_safe(&mut self, li: usize, round: u64, ctx: &mut Context<'_, HostMsg<P::Msg>>) {
        let me = ctx.self_id();
        {
            let round_state = self.levels[li].rounds.entry(round).or_default();
            if round_state.cluster_safe_seen {
                return;
            }
            round_state.cluster_safe_seen = true;
        }
        let layout = &self.layouts[li];
        let level = layout.exp;
        for c in layout.children[me.index()].clone() {
            ctx.send_class(
                c,
                HostMsg::ClusterSafe { level, round },
                CostClass::Synchronizer,
            );
        }
        for p in layout.preferred_of[me.index()].clone() {
            ctx.send_class(
                p,
                HostMsg::NbrSafe { level, round },
                CostClass::Synchronizer,
            );
        }
        self.maybe_go(li, round, ctx);
    }

    /// One neighboring cluster is safe: climb toward the leader.
    fn on_nbr_up(&mut self, li: usize, round: u64, ctx: &mut Context<'_, HostMsg<P::Msg>>) {
        let me = ctx.self_id();
        let layout = &self.layouts[li];
        match layout.parent[me.index()] {
            Some(p) => {
                ctx.send_class(
                    p,
                    HostMsg::NbrUp {
                        level: layout.exp,
                        round,
                    },
                    CostClass::Synchronizer,
                );
            }
            None => {
                self.levels[li].rounds.entry(round).or_default().nbr_up += 1;
                self.maybe_go(li, round, ctx);
            }
        }
    }

    /// Leader: cluster safe + all neighboring clusters safe → `Go`.
    fn maybe_go(&mut self, li: usize, round: u64, ctx: &mut Context<'_, HostMsg<P::Msg>>) {
        let me = ctx.self_id();
        let layout = &self.layouts[li];
        if layout.parent[me.index()].is_some() || !layout.is_leader[me.index()] {
            return;
        }
        let needed = layout.nbr_cluster_count[me.index()];
        let ready = {
            let round_state = self.levels[li].rounds.entry(round).or_default();
            round_state.cluster_safe_seen && round_state.nbr_up == needed && !round_state.go
        };
        if ready {
            self.on_go(li, round, ctx);
        }
    }

    /// Confirm the super-pulse, broadcast `Go`, and try to advance.
    fn on_go(&mut self, li: usize, round: u64, ctx: &mut Context<'_, HostMsg<P::Msg>>) {
        let me = ctx.self_id();
        if self.levels[li].confirmed >= round {
            return; // duplicate Go after the round was retired
        }
        {
            let round_state = self.levels[li].rounds.entry(round).or_default();
            if round_state.go {
                return;
            }
            round_state.go = true;
        }
        let layout = &self.layouts[li];
        for c in layout.children[me.index()].clone() {
            ctx.send_class(
                c,
                HostMsg::Go {
                    level: layout.exp,
                    round,
                },
                CostClass::Synchronizer,
            );
        }
        self.levels[li].confirmed = self.levels[li].confirmed.max(round);
        self.levels[li].rounds.remove(&round);
        self.try_advance(ctx);
    }

    /// Advances the virtual clock as far as the gates allow.
    fn try_advance(&mut self, ctx: &mut Context<'_, HostMsg<P::Msg>>) {
        let me = ctx.self_id();
        while self.t < self.until_t {
            let next = self.t + 1;
            let gated = (0..self.layouts.len()).any(|li| {
                let layout = &self.layouts[li];
                layout.participates[me.index()]
                    && next.is_multiple_of(layout.width)
                    && self.levels[li].confirmed < next / layout.width
            });
            if gated {
                return;
            }
            self.t = next;
            self.execute_pulse(next, ctx);
        }
    }
}

impl<P: SyncProcess> Process for GammaWHost<P> {
    type Msg = HostMsg<P::Msg>;

    fn on_start(&mut self, ctx: &mut Context<'_, HostMsg<P::Msg>>) {
        self.execute_pulse(0, ctx);
        self.try_advance(ctx);
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: HostMsg<P::Msg>,
        ctx: &mut Context<'_, HostMsg<P::Msg>>,
    ) {
        match msg {
            HostMsg::Hosted { msg, proc } => {
                let g = ctx.graph();
                let eid = g
                    .edge_between(ctx.self_id(), from)
                    .expect("from a neighbor");
                let level = edge_level(g.weight(eid).get());
                ctx.send_class(from, HostMsg::Ack { level }, CostClass::Synchronizer);
                self.buffered.entry(proc).or_default().push((from, msg));
            }
            HostMsg::Ack { level } => {
                let li = self.level_index(level);
                self.levels[li].ack_outstanding -= 1;
                if self.levels[li].ack_outstanding == 0 {
                    let round = self.levels[li].boundary;
                    self.maybe_safe_up(li, round, ctx);
                }
            }
            HostMsg::SafeUp { level, round } => {
                let li = self.level_index(level);
                self.levels[li].rounds.entry(round).or_default().safe_up += 1;
                self.maybe_safe_up(li, round, ctx);
            }
            HostMsg::ClusterSafe { level, round } => {
                let li = self.level_index(level);
                self.on_cluster_safe(li, round, ctx);
            }
            HostMsg::NbrSafe { level, round } => {
                let li = self.level_index(level);
                self.on_nbr_up(li, round, ctx);
            }
            HostMsg::NbrUp { level, round } => {
                let li = self.level_index(level);
                self.on_nbr_up(li, round, ctx);
            }
            HostMsg::Go { level, round } => {
                let li = self.level_index(level);
                self.on_go(li, round, ctx);
            }
        }
    }
}

/// The outcome of a synchronized (hosted) run.
#[derive(Debug)]
pub struct HostedRun<P> {
    /// Final hosted protocol states, indexed by vertex.
    pub states: Vec<P>,
    /// Metered costs of the whole run; hosted traffic is
    /// [`CostClass::Protocol`], synchronizer traffic (acks and sweeps) is
    /// [`CostClass::Synchronizer`].
    pub cost: CostReport,
    /// Number of original pulses simulated.
    pub pulses: u64,
}

/// Runs a synchronous protocol on the asynchronous network `g` under
/// synchronizer γ_w, simulating original pulses `0..=until_pulse`.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if hosted messages remain buffered past the horizon — i.e.
/// `until_pulse` was too small for the hosted protocol to finish.
pub fn run_synchronized<P, F>(
    g: &WeightedGraph,
    config: &GammaWConfig,
    until_pulse: u64,
    delay: DelayModel,
    seed: u64,
    mut make: F,
) -> Result<HostedRun<P>, SimError>
where
    P: SyncProcess,
    F: FnMut(NodeId, &WeightedGraph) -> P,
{
    // One layout per weight class present in the graph.
    let mut exps: Vec<u32> = g.edges().map(|e| edge_level(e.weight().get())).collect();
    exps.sort_unstable();
    exps.dedup();
    let layouts: Arc<Vec<LevelLayout>> = Arc::new(
        exps.into_iter()
            .map(|exp| LevelLayout::build(g, exp, config.k))
            .collect(),
    );
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(|v, g| GammaWHost::new(make(v, g), Arc::clone(&layouts), until_pulse))?;
    let undelivered: usize = run.states.iter().map(GammaWHost::undelivered).sum();
    assert_eq!(
        undelivered, 0,
        "until_pulse={until_pulse} too small: {undelivered} hosted messages undelivered"
    );
    let states = run.states.into_iter().map(|h| h.hosted).collect();
    Ok(HostedRun {
        states,
        cost: run.cost,
        pulses: until_pulse,
    })
}

/// Budgeted variant of [`run_synchronized`] for hybrid dovetailing: the
/// run is cut off once its weighted communication exceeds `comm_limit`
/// (the root suspending the attempt). Returns `Ok(None)` — with the cost
/// of the wasted attempt — when the budget did not suffice.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
#[allow(clippy::too_many_arguments)]
pub fn run_synchronized_budgeted<P, F>(
    g: &WeightedGraph,
    config: &GammaWConfig,
    until_pulse: u64,
    comm_limit: u128,
    delay: DelayModel,
    seed: u64,
    mut make: F,
) -> Result<(Option<Vec<P>>, CostReport), SimError>
where
    P: SyncProcess,
    F: FnMut(NodeId, &WeightedGraph) -> P,
{
    let mut exps: Vec<u32> = g.edges().map(|e| edge_level(e.weight().get())).collect();
    exps.sort_unstable();
    exps.dedup();
    let layouts: Arc<Vec<LevelLayout>> = Arc::new(
        exps.into_iter()
            .map(|exp| LevelLayout::build(g, exp, config.k))
            .collect(),
    );
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .comm_limit(comm_limit)
        .run(|v, g| GammaWHost::new(make(v, g), Arc::clone(&layouts), until_pulse))?;
    let undelivered: usize = run.states.iter().map(GammaWHost::undelivered).sum();
    if run.truncated || undelivered > 0 {
        return Ok((None, run.cost));
    }
    let states = run.states.into_iter().map(|h| h.hosted).collect();
    Ok((Some(states), run.cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::{generators, Cost};
    use csp_sim::sync::SyncRunner;

    /// The flooding clock from the csp-sim tests: records the pulse at
    /// which each vertex first hears the token. Under exact synchronous
    /// semantics this is the weighted distance from vertex 0.
    #[derive(Clone, Debug)]
    struct SyncFlood {
        heard_at: Option<u64>,
    }

    impl SyncProcess for SyncFlood {
        type Msg = ();

        fn on_pulse(&mut self, pulse: u64, inbox: &[(NodeId, ())], ctx: &mut SyncContext<'_, ()>) {
            let is_source = ctx.self_id() == NodeId::new(0);
            let should_fire =
                (pulse == 0 && is_source) || (!inbox.is_empty() && self.heard_at.is_none());
            if should_fire {
                self.heard_at = Some(pulse);
                let targets: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
                for u in targets {
                    ctx.send(u, ());
                }
            }
            if pulse == 0 {
                ctx.finish();
            }
        }
    }

    fn check_equivalence(g: &WeightedGraph, k: usize, seed: u64) {
        // Reference: the ideal lock-step synchronous run.
        let ideal = SyncRunner::new(g)
            .run(|_, _| SyncFlood { heard_at: None })
            .unwrap();
        // Last firing pulse plus the heaviest edge covers every echo.
        let horizon = ideal
            .states
            .iter()
            .filter_map(|s| s.heard_at)
            .max()
            .unwrap_or(0)
            + g.max_weight().get()
            + 1;
        // Hosted: the same protocol under γ_w on the asynchronous network.
        let hosted = run_synchronized(
            g,
            &GammaWConfig::new(k),
            horizon,
            DelayModel::Uniform,
            seed,
            |_, _| SyncFlood { heard_at: None },
        )
        .unwrap();
        for v in g.nodes() {
            assert_eq!(
                hosted.states[v.index()].heard_at,
                ideal.states[v.index()].heard_at,
                "output mismatch at {v} (k={k}, seed={seed})"
            );
        }
    }

    #[test]
    fn hosted_outputs_equal_ideal_outputs_on_uniform_weights() {
        let g = generators::cycle(8, |_| 1);
        check_equivalence(&g, 2, 0);
    }

    #[test]
    fn hosted_outputs_equal_ideal_outputs_on_mixed_weights() {
        let mut b = csp_graph::GraphBuilder::new(6);
        b.edge(0, 1, 1)
            .edge(1, 2, 3)
            .edge(2, 3, 1)
            .edge(3, 4, 7)
            .edge(4, 5, 2)
            .edge(5, 0, 5)
            .edge(1, 4, 2);
        let g = b.build().unwrap();
        for seed in 0..3 {
            check_equivalence(&g, 2, seed);
            check_equivalence(&g, 4, seed);
        }
    }

    #[test]
    fn hosted_outputs_on_random_graphs() {
        for seed in 0..3 {
            let g =
                generators::connected_gnp(10, 0.25, generators::WeightDist::Uniform(1, 12), seed);
            check_equivalence(&g, 3, seed);
        }
    }

    #[test]
    fn synchronizer_traffic_is_separately_metered() {
        let g = generators::cycle(6, |_| 2);
        let hosted = run_synchronized(
            &g,
            &GammaWConfig::new(2),
            10,
            DelayModel::WorstCase,
            0,
            |_, _| SyncFlood { heard_at: None },
        )
        .unwrap();
        let sync_comm = hosted.cost.comm_of(CostClass::Synchronizer);
        let proto_comm = hosted.cost.comm_of(CostClass::Protocol);
        assert!(sync_comm > Cost::ZERO);
        assert!(proto_comm > Cost::ZERO);
        assert_eq!(
            hosted.cost.weighted_comm,
            sync_comm + proto_comm,
            "classes must partition the total"
        );
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn insufficient_horizon_is_detected() {
        let g = generators::path(4, |_| 8);
        let _ = run_synchronized(
            &g,
            &GammaWConfig::new(2),
            2, // distances reach 24 — far beyond 2 pulses
            DelayModel::WorstCase,
            0,
            |_, _| SyncFlood { heard_at: None },
        );
    }
}
