//! Network synchronizer γ_w (Section 4): runs synchronous protocols on
//! asynchronous weighted networks.

mod alpha_w;
mod beta_w;
mod gamma_w;
mod layout;

pub use alpha_w::{alpha_w_overhead, run_synchronized_alpha, AlphaMsg, AlphaWHost};
pub use beta_w::{beta_w_overhead, run_synchronized_beta, BetaMsg, BetaWHost};
pub use gamma_w::{
    run_synchronized, run_synchronized_budgeted, GammaWConfig, GammaWHost, HostMsg, HostedRun,
};
pub use layout::{edge_level, next_multiple, LevelLayout};
