#![deny(missing_docs)]

//! Controllers for diffusing computations (Section 5, after \[AAPS87]).
//!
//! A *controller* transforms a protocol `π` into a protocol `φ` with the
//! same input/output behavior on correct executions, but whose resource
//! consumption is bounded even when faults or corrupt inputs make `π`
//! diverge. Every message transmission on edge `e` consumes `w(e)` units
//! of an abstract resource, and every consumption must be authorized by a
//! permit that originates at the root of the dynamically growing
//! *execution tree* (the paper's diffusing-computation model of
//! \[DS80]).
//!
//! Two grant policies are provided:
//!
//! * [`GrantPolicy::Naive`] — every request climbs all the way to the
//!   root and is granted exactly; simple, with per-unit round-trip
//!   overhead;
//! * [`GrantPolicy::Caching`] — the \[AAPS87] scheme: requests are
//!   batched, permits are granted in doubling blocks and cached at
//!   intermediate vertices, so at most `O(log² c)` control messages
//!   cross any execution-tree edge; total overhead `O(c·log² c)`
//!   (Corollary 5.1).
//!
//! The root stops granting once its (approximate) consumption counter
//! reaches the threshold `c_π`; since the counter undercounts by at most
//! a factor of two, a diverging execution is cut off after at most
//! `2·c_π` consumed units, while correct executions (whose total cost is
//! at most `c_π` by definition) are never interfered with.
//!
//! # Example
//!
//! A correct one-shot broadcast sails through the controller unimpeded:
//!
//! ```
//! use csp_control::{run_controlled, GrantPolicy};
//! use csp_graph::{generators, NodeId};
//! use csp_sim::{Context, DelayModel, Process};
//!
//! #[derive(Debug)]
//! struct Hello { initiator: bool, reached: bool }
//!
//! impl Process for Hello {
//!     type Msg = ();
//!     fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
//!         if self.initiator { self.reached = true; ctx.send_all(()); }
//!     }
//!     fn on_message(&mut self, _f: NodeId, _m: (), ctx: &mut Context<'_, ()>) {
//!         if !self.reached { self.reached = true; ctx.send_all(()); }
//!     }
//! }
//!
//! # fn main() -> Result<(), csp_sim::SimError> {
//! let g = generators::cycle(8, |_| 2);
//! let threshold = (2 * g.total_weight().get()) as u64; // c_π for a flood
//! let out = run_controlled(
//!     &g, NodeId::new(0), threshold, GrantPolicy::Caching,
//!     DelayModel::WorstCase, 0,
//!     |v, _| Hello { initiator: v == NodeId::new(0), reached: false },
//! )?;
//! assert!(!out.suspended);
//! assert!(out.states.iter().all(|h| h.reached));
//! # Ok(())
//! # }
//! ```

pub mod controller;

pub use controller::{run_controlled, ControlledOutcome, Controller, CtlMsg, GrantPolicy};
