//! The execution-tree resource controller.

use csp_graph::{NodeId, WeightedGraph};
use csp_sim::{Context, CostClass, CostReport, DelayModel, Process, SimError, Simulator};
use std::collections::VecDeque;

/// How permits are granted and propagated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GrantPolicy {
    /// Every request climbs to the root; grants are exact; nothing is
    /// cached. One control round-trip per batch of sends.
    Naive,
    /// The \[AAPS87] scheme: the root grants *double* the request (up to
    /// the remaining threshold) and interior vertices keep the surplus,
    /// serving later requests locally. Control traffic per tree edge is
    /// `O(log² c)`.
    Caching,
}

/// Wrapper messages: the hosted protocol's traffic plus control traffic.
#[derive(Clone, Debug)]
pub enum CtlMsg<M> {
    /// A hosted (authorized) protocol message.
    App(M),
    /// Resource request climbing the execution tree.
    Request {
        /// Units genuinely required right now.
        need: u64,
        /// Units asked for, including the prefetch (`want ≥ need`).
        want: u64,
    },
    /// Permit descending toward the requester.
    Permit {
        /// Units granted.
        amount: u64,
    },
}

/// The controlled wrapper around one vertex's protocol instance.
#[derive(Debug)]
pub struct Controller<P: Process> {
    hosted: P,
    policy: GrantPolicy,
    is_root: bool,
    threshold: u64,
    /// Units granted by the root so far (root only).
    granted: u64,
    /// The root refused a grant: execution is being cut off (root only).
    suspended: bool,
    /// Execution-tree parent (first App sender).
    parent: Option<NodeId>,
    /// Locally cached permits.
    credit: u64,
    /// Hosted sends awaiting authorization.
    queued: VecDeque<(NodeId, P::Msg, u64)>,
    /// Own units currently requested upward (need part).
    requested: u64,
    /// Children requests waiting for permits from above (FIFO):
    /// `(child, need, want)`.
    child_requests: VecDeque<(NodeId, u64, u64)>,
    /// Units spent from local credit since the last upward request —
    /// the prefetch allowance (AAPS87: surplus is bounded by past
    /// consumption, so total grants stay ≤ 2× total consumption).
    spent_since_request: u64,
}

impl<P: Process> Controller<P> {
    /// Wraps `hosted` at vertex `v`; `root` is the diffusing
    /// computation's initiator and holds the `threshold` counter.
    pub fn new(v: NodeId, root: NodeId, hosted: P, threshold: u64, policy: GrantPolicy) -> Self {
        Controller {
            hosted,
            policy,
            is_root: v == root,
            threshold,
            granted: 0,
            suspended: false,
            parent: None,
            credit: 0,
            queued: VecDeque::new(),
            requested: 0,
            child_requests: VecDeque::new(),
            spent_since_request: 0,
        }
    }

    /// The hosted protocol state.
    pub fn hosted(&self) -> &P {
        &self.hosted
    }

    /// Root only: whether the threshold cut the execution off.
    pub fn suspended(&self) -> bool {
        self.suspended
    }

    /// Root only: units granted.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Queues the hosted outbox and tries to dispatch.
    fn absorb(
        &mut self,
        sends: Vec<(NodeId, P::Msg, CostClass)>,
        ctx: &mut Context<'_, CtlMsg<P::Msg>>,
    ) {
        let g = ctx.graph();
        let me = ctx.self_id();
        for (to, msg, _class) in sends {
            let eid = g.edge_between(me, to).expect("hosted sends to neighbors");
            let cost = g.weight(eid).get();
            self.queued.push_back((to, msg, cost));
        }
        self.pump(ctx);
    }

    /// Serves children first, then own queued sends; requests more when
    /// short.
    fn pump(&mut self, ctx: &mut Context<'_, CtlMsg<P::Msg>>) {
        // Root self-grant: pull from the threshold counter directly.
        if self.is_root {
            let need = self.deficit();
            if need > 0 {
                let grant = self.root_grant(need, need);
                self.credit += grant;
            }
        }
        // Children FIFO: serve `want` when affordable, else at least
        // `need`, else wait.
        while let Some(&(child, need, want)) = self.child_requests.front() {
            let grant = if self.credit >= want {
                want
            } else if self.credit >= need {
                need
            } else {
                break;
            };
            self.credit -= grant;
            self.spent_since_request += grant;
            self.child_requests.pop_front();
            ctx.send_class(
                child,
                CtlMsg::Permit { amount: grant },
                CostClass::Controller,
            );
        }
        // Own sends.
        while let Some(&(to, _, cost)) = self.queued.front() {
            if self.credit >= cost {
                self.credit -= cost;
                self.spent_since_request += cost;
                let (to_, msg, _) = self.queued.pop_front().expect("front checked");
                debug_assert_eq!(to_, to);
                ctx.send(to, CtlMsg::App(msg));
            } else {
                break;
            }
        }
        // Request the remaining deficit upward, prefetching (caching
        // policy) up to the amount spent since the previous request.
        let deficit = self.deficit();
        if deficit > self.requested && !self.is_root {
            if let Some(p) = self.parent {
                let need = deficit - self.requested;
                let want = match self.policy {
                    GrantPolicy::Naive => need,
                    GrantPolicy::Caching => need.saturating_add(self.spent_since_request),
                };
                self.requested += need;
                self.spent_since_request = 0;
                ctx.send_class(p, CtlMsg::Request { need, want }, CostClass::Controller);
            }
        }
    }

    /// Units needed beyond the current credit to serve everything queued.
    fn deficit(&self) -> u64 {
        let need: u64 = self.child_requests.iter().map(|&(_, n, _)| n).sum::<u64>()
            + self.queued.iter().map(|&(_, _, c)| c).sum::<u64>();
        need.saturating_sub(self.credit)
    }

    /// Root: grants from the threshold counter.
    ///
    /// For the caching policy the counter wall is `2·threshold` because
    /// prefetches are bounded by past consumption (grants ≤ 2×consumed):
    /// a correct execution consuming ≤ `c_π` draws at most `2·c_π` and
    /// is never suspended, while a diverging one is cut off once real
    /// consumption approaches `2·c_π` — the paper's factor-two
    /// guarantee.
    fn root_grant(&mut self, need: u64, want: u64) -> u64 {
        let wall = match self.policy {
            GrantPolicy::Naive => self.threshold,
            GrantPolicy::Caching => self.threshold.saturating_mul(2),
        };
        let remaining = wall.saturating_sub(self.granted);
        let grant = want.min(remaining);
        if grant < need {
            self.suspended = true;
        }
        self.granted += grant;
        grant
    }
}

impl<P: Process> Process for Controller<P> {
    type Msg = CtlMsg<P::Msg>;

    fn on_start(&mut self, ctx: &mut Context<'_, CtlMsg<P::Msg>>) {
        let mut inner = ctx.derive::<P::Msg>();
        self.hosted.on_start(&mut inner);
        let sends = inner.take_outbox();
        self.absorb(sends, ctx);
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: CtlMsg<P::Msg>,
        ctx: &mut Context<'_, CtlMsg<P::Msg>>,
    ) {
        match msg {
            CtlMsg::App(m) => {
                if self.parent.is_none() && !self.is_root {
                    self.parent = Some(from);
                }
                let mut inner = ctx.derive::<P::Msg>();
                self.hosted.on_message(from, m, &mut inner);
                let sends = inner.take_outbox();
                self.absorb(sends, ctx);
            }
            CtlMsg::Request { need, want } => {
                match self.policy {
                    GrantPolicy::Caching if self.credit >= want && !self.is_root => {
                        // Serve entirely from the local cache.
                        self.credit -= want;
                        self.spent_since_request += want;
                        ctx.send_class(
                            from,
                            CtlMsg::Permit { amount: want },
                            CostClass::Controller,
                        );
                    }
                    _ if self.is_root => {
                        let grant = self.root_grant(need, want);
                        if grant > 0 {
                            ctx.send_class(
                                from,
                                CtlMsg::Permit { amount: grant },
                                CostClass::Controller,
                            );
                        }
                    }
                    _ => {
                        self.child_requests.push_back((from, need, want));
                        self.pump(ctx);
                    }
                }
            }
            CtlMsg::Permit { amount } => {
                self.credit += amount;
                self.requested = self.requested.saturating_sub(amount);
                self.pump(ctx);
            }
        }
    }
}

/// Outcome of a controlled run.
#[derive(Debug)]
pub struct ControlledOutcome<P> {
    /// Final hosted protocol states.
    pub states: Vec<P>,
    /// Whether the root's threshold cut the execution off.
    pub suspended: bool,
    /// Units the root granted.
    pub granted: u64,
    /// Metered costs; control traffic is [`CostClass::Controller`].
    pub cost: CostReport,
}

/// Runs `make`-constructed processes under the controller with the given
/// `threshold` (the complexity `c_π` of a correct execution) and grant
/// `policy`.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn run_controlled<P, F>(
    g: &WeightedGraph,
    root: NodeId,
    threshold: u64,
    policy: GrantPolicy,
    delay: DelayModel,
    seed: u64,
    mut make: F,
) -> Result<ControlledOutcome<P>, SimError>
where
    P: Process,
    F: FnMut(NodeId, &WeightedGraph) -> P,
{
    g.check_node(root);
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(|v, g| Controller::new(v, root, make(v, g), threshold, policy))?;
    let suspended = run.states[root.index()].suspended();
    let granted = run.states[root.index()].granted();
    let states = run.states.into_iter().map(|c| c.hosted).collect();
    Ok(ControlledOutcome {
        states,
        suspended,
        granted,
        cost: run.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::{generators, Cost};

    /// A well-behaved broadcast: floods once.
    #[derive(Debug)]
    struct Broadcast {
        initiator: bool,
        reached: bool,
    }

    impl Process for Broadcast {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            if self.initiator {
                self.reached = true;
                ctx.send_all(());
            }
        }
        fn on_message(&mut self, _f: NodeId, _m: (), ctx: &mut Context<'_, ()>) {
            if !self.reached {
                self.reached = true;
                ctx.send_all(());
            }
        }
    }

    /// A runaway protocol: every received message is echoed back forever.
    #[derive(Debug)]
    struct Runaway {
        initiator: bool,
    }

    impl Process for Runaway {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            if self.initiator {
                let targets: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
                for u in targets {
                    ctx.send(u, 0);
                }
            }
        }
        fn on_message(&mut self, from: NodeId, n: u64, ctx: &mut Context<'_, u64>) {
            ctx.send(from, n + 1); // diverges without a controller
        }
    }

    #[test]
    fn correct_executions_are_not_interfered_with() {
        let g = generators::connected_gnp(15, 0.25, generators::WeightDist::Uniform(1, 9), 3);
        // flooding costs at most 2·Ê
        let threshold = (g.total_weight() * 2).get() as u64;
        for policy in [GrantPolicy::Naive, GrantPolicy::Caching] {
            let out = run_controlled(
                &g,
                NodeId::new(0),
                threshold,
                policy,
                DelayModel::WorstCase,
                0,
                |v, _| Broadcast {
                    initiator: v == NodeId::new(0),
                    reached: false,
                },
            )
            .unwrap();
            assert!(!out.suspended, "{policy:?} must not cut a correct run");
            assert!(out.states.iter().all(|b| b.reached));
        }
    }

    #[test]
    fn runaway_protocols_are_cut_off_near_the_threshold() {
        let g = generators::path(5, |_| 2);
        let threshold = 100u64;
        for policy in [GrantPolicy::Naive, GrantPolicy::Caching] {
            let out = run_controlled(
                &g,
                NodeId::new(0),
                threshold,
                policy,
                DelayModel::WorstCase,
                0,
                |v, _| Runaway {
                    initiator: v == NodeId::new(0),
                },
            )
            .unwrap();
            assert!(out.suspended, "{policy:?} must cut the runaway off");
            // Protocol consumption ≤ granted ≤ 2·threshold.
            let app_comm = out.cost.comm_of(CostClass::Protocol);
            assert!(
                app_comm <= Cost::new(2 * threshold as u128),
                "{policy:?}: consumed {app_comm} > 2·threshold"
            );
        }
    }

    #[test]
    fn caching_policy_needs_fewer_control_messages_on_deep_trees() {
        // A long path: naive requests climb the whole path every time.
        let g = generators::path(24, |_| 1);
        let threshold = 10_000u64;
        let run = |policy| {
            run_controlled(
                &g,
                NodeId::new(0),
                threshold,
                policy,
                DelayModel::WorstCase,
                0,
                |v, _| Broadcast {
                    initiator: v == NodeId::new(0),
                    reached: false,
                },
            )
            .unwrap()
        };
        let naive = run(GrantPolicy::Naive);
        let caching = run(GrantPolicy::Caching);
        assert!(!naive.suspended && !caching.suspended);
        assert!(
            caching.cost.messages_of(CostClass::Controller)
                <= naive.cost.messages_of(CostClass::Controller),
            "caching {} > naive {}",
            caching.cost.messages_of(CostClass::Controller),
            naive.cost.messages_of(CostClass::Controller)
        );
    }

    #[test]
    fn overhead_is_within_log_squared_factor() {
        // Corollary 5.1: c_φ = O(c_π·log² c_π).
        let g = generators::grid(4, 4, generators::WeightDist::Uniform(1, 6), 5);
        let threshold = (g.total_weight() * 2).get() as u64;
        let out = run_controlled(
            &g,
            NodeId::new(0),
            threshold,
            GrantPolicy::Caching,
            DelayModel::WorstCase,
            0,
            |v, _| Broadcast {
                initiator: v == NodeId::new(0),
                reached: false,
            },
        )
        .unwrap();
        let c = out.cost.comm_of(CostClass::Protocol).get().max(2) as f64;
        let total = out.cost.weighted_comm.get() as f64;
        let bound = 4.0 * c * c.log2() * c.log2();
        assert!(total <= bound, "total {total} > 4·c·log²c = {bound}");
    }
}
