#![deny(missing_docs)]

//! # cost-sensitive — weighted analysis of communication protocols
//!
//! A reproduction of *“Cost-Sensitive Analysis of Communication
//! Protocols”* (Awerbuch, Baratz, Peleg; PODC 1990): distributed
//! protocols on weighted networks, analyzed by **weighted communication**
//! (every message on edge `e` costs `w(e)`) and **weighted time** (edge
//! delays vary up to `w(e)`), executed on a deterministic event-driven
//! simulator.
//!
//! The workspace splits into five crates, re-exported here:
//!
//! * [`graph`] — weighted graphs, generators, sequential algorithms,
//!   sparse covers/partitions, and the shallow-light tree construction;
//! * [`sim`] — the asynchronous network simulator and the lock-step
//!   weighted synchronous executor, with cost metering;
//! * [`sync`] — clock synchronizers α\*/β\*/γ\* and the network
//!   synchronizer γ_w;
//! * [`control`] — execution-tree resource controllers;
//! * [`algo`] — the paper's protocols: flooding, DFS, global functions,
//!   MST (centralized / GHS / fast / hybrid), SPT (centralized /
//!   recursive / synchronous / hybrid), connectivity, distributed SLT;
//! * [`adversary`] — adversarial schedule search (delays, message
//!   drops, vertex crashes), record/replay and counterexample shrinking
//!   over the simulator's [`LinkOracle`](csp_sim::LinkOracle) hook.
//!
//! # Quickstart
//!
//! ```
//! use cost_sensitive::prelude::*;
//!
//! // A weighted network: a light ring with one heavy chord.
//! let mut b = GraphBuilder::new(6);
//! b.edge(0, 1, 1).edge(1, 2, 1).edge(2, 3, 1)
//!  .edge(3, 4, 1).edge(4, 5, 1).edge(5, 0, 1)
//!  .edge(0, 3, 10);
//! let g = b.build()?;
//!
//! // The paper's parameters: Ê (total weight), V̂ (MST weight),
//! // D̂ (weighted diameter).
//! let params = CostParams::of(&g);
//! assert_eq!(params.total_weight.get(), 16);
//! assert_eq!(params.mst_weight.get(), 5);
//! assert_eq!(params.weighted_diameter.get(), 3);
//!
//! // Compute a global maximum over a shallow-light tree: O(V̂) messages,
//! // O(D̂) time (Corollary 2.3).
//! let inputs = [3, 1, 4, 1, 5, 9];
//! let out = compute_global(
//!     &g, NodeId::new(0), Max, &inputs,
//!     TreeKind::Slt { q: 2 }, DelayModel::WorstCase,
//! )?;
//! assert_eq!(out.value, 9);
//! assert!(out.outputs.iter().all(|&o| o == 9));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use csp_adversary as adversary;
pub use csp_algo as algo;
pub use csp_control as control;
pub use csp_graph as graph;
pub use csp_sim as sim;
pub use csp_sync as sync;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use csp_adversary::{
        check_time_bound, explore_exhaustive, find_worst_schedule, record, replay, replay_report,
        shrink, ConfigError, Crash, CriticalPathOracle, Decision, Drift, Fallback, GridPoint,
        Mutation, OccurrenceOracle, Recorder, Rejoin, ReplayReport, Schedule, ScheduleOracle,
        SearchConfig, SearchConfigBuilder, SearchOutcome, Trace, TraceStep, DEFAULT_CLASS_BUDGET,
    };
    pub use csp_algo::con_hybrid::{connectivity_pivot, run_con_hybrid};
    pub use csp_algo::dfs::run_dfs;
    pub use csp_algo::flood::run_flood;
    pub use csp_algo::global::{
        compute_global, fold_all, BoolAnd, BoolOr, Count, Max, Min, Sum, SymmetricCompact,
        TreeKind, Xor,
    };
    pub use csp_algo::leader::run_leader_election;
    pub use csp_algo::mst::{run_mst_centr, run_mst_fast, run_mst_ghs, run_mst_hybrid};
    pub use csp_algo::reliable::{run_reliable_flood, run_reliable_spt_recur};
    pub use csp_algo::resilient::{
        contract_violation, run_resilient_flood, run_resilient_flood_reliable,
        run_resilient_reliable, run_resilient_spt, Metric, Resilient, ResilientOutcome,
    };
    pub use csp_algo::slt_dist::run_slt_dist;
    pub use csp_algo::spt::synch::run_spt_synch_ideal;
    pub use csp_algo::spt::{run_spt_centr, run_spt_hybrid, run_spt_recur, run_spt_synch};
    pub use csp_algo::termination::run_with_termination_detection;
    pub use csp_control::{run_controlled, GrantPolicy};
    pub use csp_graph::cover::{ball_partition, coarsen, tree_edge_cover, Cluster, Cover};
    pub use csp_graph::generators;
    pub use csp_graph::params::CostParams;
    pub use csp_graph::slt::{shallow_light_tree, BreakpointRule};
    pub use csp_graph::{Cost, EdgeId, GraphBuilder, NodeId, RootedTree, Weight, WeightedGraph};
    pub use csp_sim::shard::{CutStats, ShardPlan};
    pub use csp_sim::sweep::{
        effective_threads, par_map, par_map_with, summarize, SweepGrid, SweepPoint, SweepRun,
        SweepSummary,
    };
    pub use csp_sim::sync::{SyncContext, SyncProcess, SyncRunner};
    pub use csp_sim::{
        BaselineSimulator, Checkpoint, Context, CoreKind, CostClass, CostReport, CrashOracle,
        DelayModel, DelayOracle, Detect, DetectConfig, DropOracle, EvalPool, EvalSummary,
        FaultAware, LinkDecision, LinkOracle, ModelOracle, MsgInfo, MsgToken, Process, RelMsg,
        Reliable, ShardedSimulator, SimTime, Simulator, TimerId,
    };
    pub use csp_sync::clock::{run_alpha_star, run_beta_star, run_gamma_star};
    pub use csp_sync::net::{
        run_synchronized, run_synchronized_alpha, run_synchronized_beta, GammaWConfig,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_reaches_every_crate() {
        let g = generators::cycle(5, |_| 2);
        let p = CostParams::of(&g);
        assert_eq!(p.total_weight, Cost::new(10));
        let flood = run_flood(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert!(flood.tree.is_spanning());
    }
}
