//! Differential property tests for the event cores: the default
//! bucket-queue core in [`Simulator`] must be observationally
//! *identical* both to the retained binary-heap core
//! ([`CoreKind::Heap`]) and to the `HashMap`-based reference
//! implementation ([`BaselineSimulator`](cost_sensitive::sim::BaselineSimulator))
//! — same [`CostReport`], same delivery trace, same final states,
//! across graph families, delay models, dispatch-time delay *oracles*
//! and seeds — and every trace passes the per-channel FIFO validator.
//! No communication budget is set here: the flat cores and the baseline
//! intentionally differ in budget enforcement (the baseline keeps the
//! historical late check).
//!
//! The checkpoint-equivalence property pins the other half of the PR:
//! resuming a mutated schedule from a prefix checkpoint of its base run
//! is bit-identical to replaying the mutant cold, for random mutation
//! points and checkpoint intervals — the exact contract the adversary
//! search's incremental candidate evaluation relies on.

use cost_sensitive::algo::mst::ghs::Ghs;
use cost_sensitive::prelude::*;
use cost_sensitive::sim::BaselineSimulator;
use proptest::prelude::*;

/// A connected graph drawn from four structurally distinct families.
fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (0u8..4, 6usize..=16, 1u64..=32, any::<u64>()).prop_map(
        |(family, n, wmax, seed)| match family {
            0 => generators::connected_gnp(n, 0.3, generators::WeightDist::Uniform(1, wmax), seed),
            1 => generators::sparse_heavy_path(n, wmax.max(2) * 10, seed),
            2 => generators::cluster_graph(3, (n / 3).max(2), wmax.max(2) * 8, seed),
            _ => generators::heavy_chord_cycle(n, wmax * 50),
        },
    )
}

fn arb_delay() -> impl Strategy<Value = DelayModel> {
    (0u8..4).prop_map(|i| match i {
        0 => DelayModel::WorstCase,
        1 => DelayModel::Uniform,
        2 => DelayModel::Proportional { num: 1, den: 2 },
        _ => DelayModel::Eager,
    })
}

/// How to build a [`LinkOracle`] for the oracle-driven differential
/// property: the fixed models re-expressed as oracles, the adversary
/// crate's critical-path greedy, and replay of a mutated recording
/// (which exercises the fallback path on divergence).
#[derive(Clone, Copy, Debug)]
enum OracleSpec {
    Model(DelayModel, u64),
    CriticalPath,
    MutatedReplay { seed: u64, flips: usize },
}

fn arb_oracle() -> impl Strategy<Value = OracleSpec> {
    (0u8..4, arb_delay(), any::<u64>(), 1u64..12).prop_map(|(kind, m, seed, flips)| match kind {
        0 | 1 => OracleSpec::Model(m, seed),
        2 => OracleSpec::CriticalPath,
        _ => OracleSpec::MutatedReplay {
            seed,
            flips: flips as usize,
        },
    })
}

fn oracle_for<'s>(spec: &OracleSpec, mutant: Option<&'s Schedule>) -> Box<dyn LinkOracle + 's> {
    match spec {
        OracleSpec::Model(m, s) => Box::new(ModelOracle::new(*m, *s)),
        OracleSpec::CriticalPath => Box::new(CriticalPathOracle::new()),
        OracleSpec::MutatedReplay { .. } => {
            Box::new(ScheduleOracle::new(mutant.expect("mutant prepared")))
        }
    }
}

/// A deliberately chatty protocol: floods, then every vertex bounces a
/// shrinking counter to a rotating neighbor — exercises bursts,
/// same-pulse ties and FIFO stacking more than a plain flood does.
#[derive(Debug)]
struct Chatter {
    seen: bool,
    budget: u32,
}

impl Process for Chatter {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        if ctx.self_id() == NodeId::new(0) {
            self.seen = true;
            ctx.send_all(4);
        }
    }

    fn on_message(&mut self, from: NodeId, counter: u32, ctx: &mut Context<'_, u32>) {
        if !self.seen {
            self.seen = true;
            ctx.send_all(counter);
        }
        if counter > 0 && self.budget > 0 {
            self.budget -= 1;
            let degree = ctx.degree();
            let pick = ctx
                .neighbors()
                .nth((counter as usize + self.budget as usize) % degree)
                .map(|(u, _, _)| u)
                .unwrap_or(from);
            ctx.send(pick, counter - 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GHS — the heaviest protocol in the workspace — produces the same
    /// costs, the same message-by-message trace and the same final
    /// states on the bucket core, the heap core and the baseline.
    #[test]
    fn ghs_runs_identically_on_all_three_cores(
        g in arb_graph(),
        delay in arb_delay(),
        seed in any::<u64>(),
    ) {
        let flat = Simulator::new(&g)
            .delay(delay)
            .seed(seed)
            .record_trace(1 << 16)
            .run(Ghs::new)
            .unwrap();
        let heap = Simulator::new(&g)
            .core(CoreKind::Heap)
            .delay(delay)
            .seed(seed)
            .record_trace(1 << 16)
            .run(Ghs::new)
            .unwrap();
        let base = BaselineSimulator::new(&g)
            .delay(delay)
            .seed(seed)
            .record_trace(1 << 16)
            .run(Ghs::new)
            .unwrap();
        prop_assert_eq!(&flat.cost, &heap.cost);
        prop_assert_eq!(flat.trace.events(), heap.trace.events());
        prop_assert_eq!(
            format!("{:?}", flat.states),
            format!("{:?}", heap.states)
        );
        prop_assert_eq!(&flat.cost, &base.cost);
        prop_assert_eq!(flat.trace.events(), base.trace.events());
        prop_assert_eq!(flat.truncated, base.truncated);
        prop_assert_eq!(
            format!("{:?}", flat.states),
            format!("{:?}", base.states)
        );
    }

    /// Burst-heavy traffic with FIFO stacking is also bit-identical on
    /// all three executors.
    #[test]
    fn chatter_runs_identically_on_all_three_cores(
        g in arb_graph(),
        delay in arb_delay(),
        seed in any::<u64>(),
        budget in 0u32..6,
    ) {
        let mk = |_: NodeId, _: &WeightedGraph| Chatter { seen: false, budget };
        let flat = Simulator::new(&g)
            .delay(delay)
            .seed(seed)
            .record_trace(1 << 16)
            .run(mk)
            .unwrap();
        let heap = Simulator::new(&g)
            .core(CoreKind::Heap)
            .delay(delay)
            .seed(seed)
            .record_trace(1 << 16)
            .run(mk)
            .unwrap();
        let base = BaselineSimulator::new(&g)
            .delay(delay)
            .seed(seed)
            .record_trace(1 << 16)
            .run(mk)
            .unwrap();
        prop_assert_eq!(&flat.cost, &heap.cost);
        prop_assert_eq!(flat.trace.events(), heap.trace.events());
        prop_assert_eq!(&flat.cost, &base.cost);
        prop_assert_eq!(flat.trace.events(), base.trace.events());
    }

    /// Arbitrary delay *oracles* — not just the fixed models — keep the
    /// two cores bit-identical, and every resulting trace passes the
    /// per-channel FIFO validator from `csp_sim::trace`.
    #[test]
    fn oracle_runs_are_fifo_and_identical_on_both_cores(
        g in arb_graph(),
        spec in arb_oracle(),
    ) {
        let mutant = match spec {
            OracleSpec::MutatedReplay { seed, flips } => {
                let mut rec = Recorder::new(ModelOracle::new(DelayModel::WorstCase, 0));
                Simulator::new(&g).run_with_oracle(&mut rec, Ghs::new).unwrap();
                Some(
                    cost_sensitive::adversary::Mutation::new()
                        .delay_flips(flips)
                        .apply(&rec.into_schedule(Fallback::Rush), seed),
                )
            }
            _ => None,
        };
        let mut flat_oracle = oracle_for(&spec, mutant.as_ref());
        let flat = Simulator::new(&g)
            .record_trace(1 << 16)
            .run_with_oracle(&mut *flat_oracle, Ghs::new)
            .unwrap();
        let mut heap_oracle = oracle_for(&spec, mutant.as_ref());
        let heap = Simulator::new(&g)
            .core(CoreKind::Heap)
            .record_trace(1 << 16)
            .run_with_oracle(&mut *heap_oracle, Ghs::new)
            .unwrap();
        let mut base_oracle = oracle_for(&spec, mutant.as_ref());
        let base = BaselineSimulator::new(&g)
            .record_trace(1 << 16)
            .run_with_oracle(&mut *base_oracle, Ghs::new)
            .unwrap();
        prop_assert!(flat.trace.is_fifo(), "flat core violated channel FIFO");
        prop_assert!(base.trace.is_fifo(), "baseline violated channel FIFO");
        prop_assert_eq!(&flat.cost, &heap.cost);
        prop_assert_eq!(flat.trace.events(), heap.trace.events());
        prop_assert_eq!(&flat.cost, &base.cost);
        prop_assert_eq!(flat.trace.events(), base.trace.events());
    }

    /// Checkpoint equivalence: for a random mutated schedule, resuming
    /// from the deepest base-run checkpoint at or before the first
    /// mutated decision reproduces the cold replay of the mutant
    /// bit-for-bit — costs, trace and final states. This is exactly the
    /// splice the adversary search performs per hill-climb candidate.
    #[test]
    fn checkpoint_resume_equals_cold_run_for_mutated_schedules(
        g in arb_graph(),
        seed in any::<u64>(),
        flips in 1usize..8,
        every in 1u64..48,
    ) {
        let mut rec = Recorder::new(ModelOracle::new(DelayModel::Uniform, seed));
        Simulator::new(&g).run_with_oracle(&mut rec, Ghs::new).unwrap();
        let incumbent = rec.into_schedule(Fallback::WorstCase);
        let mutant = cost_sensitive::adversary::Mutation::new()
            .delay_flips(flips)
            .apply(&incumbent, seed ^ 0xabc);

        let mut sim = Simulator::new(&g);
        sim.record_trace(1 << 16);
        let mut cps: Vec<Checkpoint<Ghs>> = Vec::new();
        sim.run_with_checkpoints(
            &mut ScheduleOracle::new(&incumbent),
            Ghs::new,
            every,
            &mut cps,
        )
        .unwrap();

        let first_diff = incumbent
            .decisions
            .iter()
            .zip(&mutant.decisions)
            .position(|(a, b)| a.delay != b.delay)
            .unwrap_or(mutant.decisions.len()) as u64;
        if let Some(cp) = cps.iter().rev().find(|cp| cp.messages() <= first_diff) {
            let resumed = sim
                .resume(cp, &mut ScheduleOracle::new(&mutant))
                .unwrap();
            let cold = sim
                .run_with_oracle(&mut ScheduleOracle::new(&mutant), Ghs::new)
                .unwrap();
            prop_assert_eq!(&resumed.cost, &cold.cost);
            prop_assert_eq!(resumed.trace.events(), cold.trace.events());
            prop_assert_eq!(resumed.truncated, cold.truncated);
            prop_assert_eq!(
                format!("{:?}", resumed.states),
                format!("{:?}", cold.states)
            );
        }
    }
}
