//! Differential property tests for the sharded conservative-parallel
//! core: [`ShardedSimulator`] must be observationally *identical* to the
//! sequential [`Simulator`] — same [`CostReport`] (including the fault
//! meters), same delivery trace, same final states, same truncation flag
//! — across graph families, shard counts {1, 2, 4, 8}, both event-queue
//! cores, fixed delay models, dispatch-time delay *oracles* (including
//! replay of mutated recordings), drop/crash fault stacks and the
//! timer-heavy [`Reliable`]/[`Detect`] wrappers.
//!
//! The shard count is a pure partition parameter: every value must
//! select the *same* execution, so all assertions here are exact
//! equalities against the sequential run, never mere invariants.

use cost_sensitive::algo::flood::Flood;
use cost_sensitive::algo::mst::ghs::Ghs;
use cost_sensitive::prelude::*;
use proptest::prelude::*;

/// A connected graph drawn from four structurally distinct families.
fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (0u8..4, 6usize..=16, 1u64..=32, any::<u64>()).prop_map(
        |(family, n, wmax, seed)| match family {
            0 => generators::connected_gnp(n, 0.3, generators::WeightDist::Uniform(1, wmax), seed),
            1 => generators::sparse_heavy_path(n, wmax.max(2) * 10, seed),
            2 => generators::cluster_graph(3, (n / 3).max(2), wmax.max(2) * 8, seed),
            _ => generators::heavy_chord_cycle(n, wmax * 50),
        },
    )
}

fn arb_delay() -> impl Strategy<Value = DelayModel> {
    (0u8..4).prop_map(|i| match i {
        0 => DelayModel::WorstCase,
        1 => DelayModel::Uniform,
        2 => DelayModel::Proportional { num: 1, den: 2 },
        _ => DelayModel::Eager,
    })
}

/// Shard counts under test: 1 pins the degenerate single-worker path,
/// the rest exercise genuine cross-shard traffic.
fn arb_shards() -> impl Strategy<Value = usize> {
    (0u32..4).prop_map(|i| 1usize << i)
}

fn arb_core() -> impl Strategy<Value = CoreKind> {
    any::<bool>().prop_map(|heap| {
        if heap {
            CoreKind::Heap
        } else {
            CoreKind::Bucket
        }
    })
}

/// How to build a [`LinkOracle`] for the oracle-driven property: fixed
/// models re-expressed as oracles, the adversary crate's critical-path
/// greedy, and replay of a mutated recording (which exercises the
/// fallback path on divergence).
#[derive(Clone, Copy, Debug)]
enum OracleSpec {
    Model(DelayModel, u64),
    CriticalPath,
    MutatedReplay { seed: u64, flips: usize },
}

fn arb_oracle() -> impl Strategy<Value = OracleSpec> {
    (0u8..4, arb_delay(), any::<u64>(), 1u64..12).prop_map(|(kind, m, seed, flips)| match kind {
        0 | 1 => OracleSpec::Model(m, seed),
        2 => OracleSpec::CriticalPath,
        _ => OracleSpec::MutatedReplay {
            seed,
            flips: flips as usize,
        },
    })
}

fn oracle_for<'s>(
    spec: &OracleSpec,
    mutant: Option<&'s Schedule>,
) -> Box<dyn LinkOracle + Send + 's> {
    match spec {
        OracleSpec::Model(m, s) => Box::new(ModelOracle::new(*m, *s)),
        OracleSpec::CriticalPath => Box::new(CriticalPathOracle::new()),
        OracleSpec::MutatedReplay { .. } => {
            Box::new(ScheduleOracle::new(mutant.expect("mutant prepared")))
        }
    }
}

/// A deliberately chatty protocol: floods, then every vertex bounces a
/// shrinking counter to a rotating neighbor — exercises bursts,
/// same-tick ties and FIFO stacking more than a plain flood does.
#[derive(Debug)]
struct Chatter {
    seen: bool,
    budget: u32,
}

impl Process for Chatter {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        if ctx.self_id() == NodeId::new(0) {
            self.seen = true;
            ctx.send_all(4);
        }
    }

    fn on_message(&mut self, from: NodeId, counter: u32, ctx: &mut Context<'_, u32>) {
        if !self.seen {
            self.seen = true;
            ctx.send_all(counter);
        }
        if counter > 0 && self.budget > 0 {
            self.budget -= 1;
            let degree = ctx.degree();
            let pick = ctx
                .neighbors()
                .nth((counter as usize + self.budget as usize) % degree)
                .map(|(u, _, _)| u)
                .unwrap_or(from);
            ctx.send(pick, counter - 1);
        }
    }
}

/// Asserts the sharded run is bit-identical to the sequential one.
macro_rules! assert_identical {
    ($seq:expr, $par:expr) => {{
        let (seq, par) = (&$seq, &$par);
        prop_assert_eq!(&seq.cost, &par.cost);
        prop_assert_eq!(seq.trace.events(), par.trace.events());
        prop_assert_eq!(seq.trace.dropped(), par.trace.dropped());
        prop_assert_eq!(seq.truncated, par.truncated);
        prop_assert_eq!(format!("{:?}", seq.states), format!("{:?}", par.states));
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Burst-heavy traffic under the fixed delay models is bit-identical
    /// for every shard count on both queue cores.
    #[test]
    fn chatter_is_identical_across_shard_counts(
        g in arb_graph(),
        delay in arb_delay(),
        seed in any::<u64>(),
        budget in 0u32..6,
        shards in arb_shards(),
        core in arb_core(),
    ) {
        let mk = |_: NodeId, _: &WeightedGraph| Chatter { seen: false, budget };
        let seq = Simulator::new(&g)
            .core(core)
            .delay(delay)
            .seed(seed)
            .record_trace(1 << 16)
            .run(mk)
            .unwrap();
        let par = ShardedSimulator::new(&g)
            .core(core)
            .delay(delay)
            .seed(seed)
            .threads(shards)
            .record_trace(1 << 16)
            .run(mk)
            .unwrap();
        assert_identical!(seq, par);
    }

    /// GHS — the heaviest protocol in the workspace — stays bit-identical
    /// under arbitrary dispatch-time oracles, including replay of mutated
    /// schedules (the adversary search's witness format).
    #[test]
    fn ghs_under_oracles_is_identical_across_shard_counts(
        g in arb_graph(),
        spec in arb_oracle(),
        shards in arb_shards(),
    ) {
        let mutant = match spec {
            OracleSpec::MutatedReplay { seed, flips } => {
                let mut rec = Recorder::new(ModelOracle::new(DelayModel::WorstCase, 0));
                Simulator::new(&g).run_with_oracle(&mut rec, Ghs::new).unwrap();
                Some(Mutation::new().delay_flips(flips).apply(&rec.into_schedule(Fallback::Rush), seed))
            }
            _ => None,
        };
        let mut seq_oracle = oracle_for(&spec, mutant.as_ref());
        let seq = Simulator::new(&g)
            .record_trace(1 << 16)
            .run_with_oracle(&mut *seq_oracle, Ghs::new)
            .unwrap();
        let mut par_oracle = oracle_for(&spec, mutant.as_ref());
        let par = ShardedSimulator::new(&g)
            .threads(shards)
            .record_trace(1 << 16)
            .run_with_oracle(&mut *par_oracle, Ghs::new)
            .unwrap();
        prop_assert!(seq.trace.is_fifo(), "sequential run violated channel FIFO");
        prop_assert!(par.trace.is_fifo(), "sharded run violated channel FIFO");
        assert_identical!(seq, par);
    }

    /// The timer-heavy fault stacks — [`Reliable`] retransmission over a
    /// dropping link and [`Detect`] heartbeats over drops *and* crashes —
    /// keep every shard count bit-identical, fault meters included.
    #[test]
    fn fault_stacks_are_identical_across_shard_counts(
        g in arb_graph(),
        seed in any::<u64>(),
        drop_rate in 0.0f64..0.4,
        shards in arb_shards(),
        crash_a in 0usize..6,
        crash_t in 0u64..20,
    ) {
        // Reliable<Flood>: per-channel ack timers, retransmission on
        // timeout, cancellation on ack.
        let mk_rel = |v: NodeId, _: &WeightedGraph| {
            Reliable::new(Flood::new(v == NodeId::new(0)), 3)
        };
        let mut seq_oracle = DropOracle::new(DelayModel::Uniform, seed, drop_rate, 3);
        let seq = Simulator::new(&g)
            .record_trace(1 << 16)
            .run_with_oracle(&mut seq_oracle, mk_rel)
            .unwrap();
        let mut par_oracle = DropOracle::new(DelayModel::Uniform, seed, drop_rate, 3);
        let par = ShardedSimulator::new(&g)
            .threads(shards)
            .record_trace(1 << 16)
            .run_with_oracle(&mut par_oracle, mk_rel)
            .unwrap();
        assert_identical!(seq, par);

        // Detect<Flood>: periodic heartbeat timers at every vertex plus a
        // mid-run crash the detector must flag identically.
        let crashes = vec![(NodeId::new(crash_a % g.node_count()), SimTime::new(crash_t))];
        let cfg = DetectConfig::new(4, 2, 1);
        let mk_det = |v: NodeId, _: &WeightedGraph| {
            Detect::new(Flood::new(v == NodeId::new(0)), cfg)
        };
        let mut seq_oracle = CrashOracle::new(
            DropOracle::new(DelayModel::Uniform, seed ^ 0xD15EA5E, drop_rate, 3),
            crashes.clone(),
        );
        let seq = Simulator::new(&g)
            .record_trace(1 << 16)
            .run_with_oracle(&mut seq_oracle, mk_det)
            .unwrap();
        let mut par_oracle = CrashOracle::new(
            DropOracle::new(DelayModel::Uniform, seed ^ 0xD15EA5E, drop_rate, 3),
            crashes,
        );
        let par = ShardedSimulator::new(&g)
            .threads(shards)
            .record_trace(1 << 16)
            .run_with_oracle(&mut par_oracle, mk_det)
            .unwrap();
        assert_identical!(seq, par);
    }

    /// An explicit, deliberately unbalanced plan (all weight on shard 0)
    /// still reproduces the sequential run: correctness cannot depend on
    /// the partition's quality, only on its totality.
    #[test]
    fn explicit_unbalanced_plans_are_identical(
        g in arb_graph(),
        delay in arb_delay(),
        seed in any::<u64>(),
    ) {
        let n = g.node_count();
        // First n-1 vertices on shard 0, the last vertex alone on shard 1,
        // shard 2 empty.
        let mut assignment = vec![0u32; n];
        assignment[n - 1] = 1;
        let plan = ShardPlan::from_assignment(assignment, 3);
        let mk = |_: NodeId, _: &WeightedGraph| Chatter { seen: false, budget: 3 };
        let seq = Simulator::new(&g)
            .delay(delay)
            .seed(seed)
            .record_trace(1 << 16)
            .run(mk)
            .unwrap();
        let par = ShardedSimulator::new(&g)
            .delay(delay)
            .seed(seed)
            .threads(3)
            .plan(plan)
            .record_trace(1 << 16)
            .run(mk)
            .unwrap();
        assert_identical!(seq, par);
    }
}
