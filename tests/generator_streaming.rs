//! Differential property tests for the streaming scale-tier
//! generators: below [`generators::GNP_STREAMING_THRESHOLD`] the
//! dispatching [`generators::connected_gnp`] must reproduce the
//! historical dense generator **bit for bit** — every committed
//! adversary schedule and crash-time witness references its graph by
//! `(n, p, dist, seed)`, so any drift would silently invalidate them —
//! and above it the geometric-skip streaming path must deliver
//! structurally sound graphs that share the dense path's RNG prefix
//! (the attachment-tree backbone).

use cost_sensitive::graph::algo::is_connected;
use cost_sensitive::prelude::*;
use generators::{
    connected_gnp_dense, connected_gnp_streaming, WeightDist, GNP_STREAMING_THRESHOLD,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Flattens a graph into a comparable `(u, v, w)` edge list; two graphs
/// built from the same RNG stream must agree on this exactly, including
/// insertion order (protocol traces depend on it).
fn edge_list(g: &WeightedGraph) -> Vec<(usize, usize, u64)> {
    g.edges()
        .map(|e| (e.u().index(), e.v().index(), e.weight().get()))
        .collect()
}

fn arb_dist() -> impl Strategy<Value = WeightDist> {
    (0u8..3, 1u64..=64, 0u32..=6).prop_map(|(kind, w, exp)| match kind {
        0 => WeightDist::Constant(w),
        1 => WeightDist::Uniform(1, w),
        _ => WeightDist::PowerOfTwo(exp),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The seed-for-seed contract: for every `n` below the streaming
    /// threshold the dispatcher and the dense reference emit the same
    /// `WeightedGraph`, bit for bit.
    #[test]
    fn dispatching_gnp_matches_dense_below_threshold(
        n in 2usize..=48,
        p_pct in 0u32..=100,
        dist in arb_dist(),
        seed in any::<u64>(),
    ) {
        let p = p_pct as f64 / 100.0;
        let dispatched = generators::connected_gnp(n, p, dist, seed);
        let dense = connected_gnp_dense(n, p, dist, seed);
        prop_assert_eq!(dispatched.node_count(), dense.node_count());
        prop_assert_eq!(edge_list(&dispatched), edge_list(&dense));
    }

    /// The streaming generator's first `n − 1` edges (the attachment
    /// tree) coincide with the dense generator's: both draw the tree
    /// from the same RNG prefix before diverging on the extras.
    #[test]
    fn streaming_gnp_shares_the_dense_tree_backbone(
        n in 2usize..=128,
        p_pct in 0u32..=50,
        dist in arb_dist(),
        seed in any::<u64>(),
    ) {
        let p = p_pct as f64 / 100.0;
        let dense = connected_gnp_dense(n, p, dist, seed);
        let streaming = connected_gnp_streaming(n, p, dist, seed);
        prop_assert_eq!(
            &edge_list(&dense)[..n - 1],
            &edge_list(&streaming)[..n - 1]
        );
    }

    /// Structural soundness of the streaming path at sizes the dense
    /// reference can still cross-check: connected, duplicate-free,
    /// deterministic, and edge counts in the right regime.
    #[test]
    fn streaming_gnp_is_sound(
        n in 2usize..=300,
        p_pct in 0u32..=30,
        dist in arb_dist(),
        seed in any::<u64>(),
    ) {
        let p = p_pct as f64 / 100.0;
        let g = connected_gnp_streaming(n, p, dist, seed);
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(is_connected(&g));
        prop_assert!(g.edge_count() >= n - 1);
        let mut seen = HashSet::new();
        for e in g.edges() {
            prop_assert!(e.u() < e.v(), "normalized endpoints");
            prop_assert!(e.v().index() < n);
            prop_assert!(seen.insert((e.u(), e.v())), "duplicate edge");
        }
        let again = connected_gnp_streaming(n, p, dist, seed);
        prop_assert_eq!(edge_list(&g), edge_list(&again));
    }

    /// The chunked builders of the other scale-tier families keep
    /// their invariants: `G_x` (the Figure-7 lower-bound family) and
    /// the cluster workload stay connected and duplicate-free.
    #[test]
    fn chunked_family_builders_stay_sound(
        n in 4usize..=32,
        x in 2u64..=24,
        clusters in 2usize..=5,
        size in 2usize..=12,
        seed in any::<u64>(),
    ) {
        let gx = generators::lower_bound_family(n, x);
        prop_assert!(is_connected(&gx));
        let cg = generators::cluster_graph(clusters, size, 64, seed);
        prop_assert!(is_connected(&cg));
        let mut seen = HashSet::new();
        for e in cg.edges() {
            prop_assert!(seen.insert((e.u(), e.v())), "duplicate edge");
        }
    }
}

/// One deterministic probe above the dispatch threshold: the dispatcher
/// must route to the streaming path (same output) and stay connected.
#[test]
fn dispatcher_routes_large_n_to_streaming() {
    let n = GNP_STREAMING_THRESHOLD + 1;
    let dist = WeightDist::Uniform(1, 32);
    let via_dispatch = generators::connected_gnp(n, 4.0 / n as f64, dist, 7);
    let direct = connected_gnp_streaming(n, 4.0 / n as f64, dist, 7);
    assert_eq!(edge_list(&via_dispatch), edge_list(&direct));
    assert!(is_connected(&via_dispatch));
}
