//! Integration tests for the synchronizer family: the three network
//! synchronizers must provide their advertised abstractions on shared
//! workloads, including the Peleg–Ullman hypercube topology.

use cost_sensitive::prelude::*;
use cost_sensitive::sim::sync::{SyncContext, SyncProcess};
use cost_sensitive::sync::net::{beta_w_overhead, run_synchronized_beta};

/// Weighted flood for γ_w (records weighted distance) — the hosted
/// protocol used across equivalence tests.
#[derive(Clone, Debug)]
struct WeightedFlood {
    source: NodeId,
    heard_at: Option<u64>,
}

impl SyncProcess for WeightedFlood {
    type Msg = ();
    fn on_pulse(&mut self, pulse: u64, inbox: &[(NodeId, ())], ctx: &mut SyncContext<'_, ()>) {
        let fire = (pulse == 0 && ctx.self_id() == self.source)
            || (!inbox.is_empty() && self.heard_at.is_none());
        if fire {
            self.heard_at = Some(pulse);
            let targets: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
            for u in targets {
                ctx.send(u, ());
            }
        }
        if pulse == 0 {
            ctx.finish();
        }
    }
}

#[test]
fn gamma_w_is_exact_on_hypercubes() {
    // Power-of-two weights: the natural normalized network of §4.2.
    let g = generators::hypercube(4, generators::WeightDist::PowerOfTwo(3), 9);
    let s = NodeId::new(0);
    let reference = cost_sensitive::graph::algo::distances(&g, s);
    let ecc = reference.iter().map(|d| d.get() as u64).max().unwrap();
    let horizon = ecc + g.max_weight().get() + 1;
    for (k, seed) in [(2usize, 0u64), (4, 1), (8, 2)] {
        let hosted = run_synchronized(
            &g,
            &GammaWConfig::new(k),
            horizon,
            DelayModel::Uniform,
            seed,
            |_v, _| WeightedFlood {
                source: s,
                heard_at: None,
            },
        )
        .unwrap();
        for v in g.nodes() {
            assert_eq!(
                hosted.states[v.index()].heard_at,
                Some(reference[v.index()].get() as u64),
                "k={k} vertex {v}"
            );
        }
    }
}

#[test]
fn alpha_and_beta_hosts_provide_hop_semantics_on_torus() {
    let g = generators::torus(4, 4, generators::WeightDist::Uniform(1, 16), 3);
    let hops = cost_sensitive::graph::algo::hop_distances(&g, NodeId::new(0));
    let horizon = hops.iter().map(|h| h.unwrap() as u64).max().unwrap() + 2;
    let alpha = run_synchronized_alpha(&g, horizon, DelayModel::Uniform, 5, |_, _| WeightedFlood {
        source: NodeId::new(0),
        heard_at: None,
    })
    .unwrap();
    let beta = run_synchronized_beta(
        &g,
        NodeId::new(0),
        horizon,
        DelayModel::Uniform,
        5,
        |_, _| WeightedFlood {
            source: NodeId::new(0),
            heard_at: None,
        },
    )
    .unwrap();
    for v in g.nodes() {
        let h = Some(hops[v.index()].unwrap() as u64);
        assert_eq!(alpha.states[v.index()].heard_at, h, "α_w at {v}");
        assert_eq!(beta.states[v.index()].heard_at, h, "β_w at {v}");
    }
}

#[test]
fn synchronizer_overhead_ordering_matches_the_paper() {
    // On heavy-chord networks: comm(β_w) ≪ comm(α_w) and
    // time(β_w) ≪ time(α_w); γ_w's time is W-independent.
    let g = generators::heavy_chord_cycle(16, 4_000);
    let pulses = 6;
    let alpha =
        cost_sensitive::sync::net::alpha_w_overhead(&g, pulses, DelayModel::WorstCase, 0).unwrap();
    let beta = beta_w_overhead(&g, NodeId::new(0), pulses, DelayModel::WorstCase, 0).unwrap();
    assert!(
        beta.comm_of(CostClass::Synchronizer) < alpha.comm_of(CostClass::Synchronizer),
        "β_w comm must undercut α_w"
    );
    assert!(
        beta.completion < alpha.completion,
        "β_w time must undercut α_w on d ≪ W networks"
    );
}

#[test]
fn clock_gamma_star_scales_with_d_not_w() {
    // Grow W by 100× at fixed topology: γ*'s pulse delay must not move.
    let delays: Vec<u64> = [100u64, 10_000]
        .iter()
        .map(|&heavy| {
            let g = generators::heavy_chord_cycle(12, heavy);
            run_gamma_star(&g, 4, DelayModel::WorstCase, 0)
                .unwrap()
                .stats
                .max_pulse_delay()
        })
        .collect();
    assert_eq!(delays[0], delays[1], "γ* must be W-independent");
}

#[test]
fn leader_election_and_termination_detection_compose() {
    use cost_sensitive::algo::flood::Flood;
    let g = generators::hypercube(4, generators::WeightDist::Uniform(1, 9), 4);
    let leader = run_leader_election(&g, DelayModel::Uniform, 2)
        .unwrap()
        .leader;
    let detected = run_with_termination_detection(&g, leader, DelayModel::Uniform, 3, |v, _| {
        Flood::new(v == leader)
    })
    .unwrap();
    assert!(detected.states.iter().all(Flood::reached));
    assert_eq!(detected.detected_at, detected.cost.completion);
}
