//! The paper's stated complexity bounds, checked empirically (with
//! explicit constants) on parameter sweeps — the integration-level
//! counterpart of the per-crate unit tests. The sweeps fan out over
//! `csp_sim::sweep` so multi-core machines check all grid points at once.

use cost_sensitive::prelude::*;

fn log2c(n: usize) -> u128 {
    (n.max(2) as f64).log2().ceil() as u128
}

/// Figure 1: global function computation — comm Θ(V̂), time Θ(D̂).
#[test]
fn figure_1_global_functions_are_v_and_d_optimal() {
    let graphs: Vec<(String, WeightedGraph)> = [12, 20, 28]
        .iter()
        .flat_map(|&n| (0..3).map(move |seed| (n, seed)))
        .map(|(n, seed)| {
            (
                format!("gnp-n{n}-s{seed}"),
                generators::connected_gnp(n, 0.2, generators::WeightDist::Uniform(1, 32), seed),
            )
        })
        .collect();
    let mut grid = SweepGrid::new();
    for (label, g) in &graphs {
        grid = grid.graph(label.clone(), g);
    }
    let runs = grid.run(|pt| {
        let p = CostParams::of(pt.graph);
        let n = pt.graph.node_count();
        let inputs: Vec<u64> = (0..n as u64).collect();
        let out = compute_global(
            pt.graph,
            NodeId::new(0),
            Max,
            &inputs,
            TreeKind::Slt { q: 2 },
            pt.delay,
        )
        .unwrap();
        // Upper bounds with q = 2 constants.
        assert!(
            out.cost.weighted_comm <= p.mst_weight * 4,
            "{}",
            pt.graph_label
        );
        assert!(
            (out.cost.completion.get() as u128) <= p.weighted_diameter.get() * 6,
            "{}",
            pt.graph_label
        );
        // Lower bounds: no algorithm beats V̂ comm / D̂ time by more
        // than the convergecast+broadcast structure allows; our
        // measured run must sit above the floor too (sanity).
        assert!(out.cost.weighted_comm >= p.mst_weight);
        out.cost
    });
    assert_eq!(runs.len(), 9);
}

/// Figure 2: connectivity — flood/DFS at O(Ê), hybrid at O(min{Ê, n·V̂}).
#[test]
fn figure_2_connectivity_bounds() {
    let seeds: Vec<u64> = (0..3).collect();
    par_map(&seeds, seeds.len(), |&seed| {
        let g = generators::connected_gnp(20, 0.25, generators::WeightDist::Uniform(1, 24), seed);
        let p = CostParams::of(&g);
        let flood = run_flood(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert!(flood.cost.weighted_comm <= p.total_weight * 2);
        let dfs = run_dfs(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert!(dfs.cost.weighted_comm <= p.total_weight * 12);
        let hybrid = run_con_hybrid(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        let pivot = connectivity_pivot(&g, p.mst_weight);
        assert!(
            hybrid.cost.weighted_comm <= pivot * 60,
            "hybrid {} ≫ pivot {pivot} (seed {seed})",
            hybrid.cost.weighted_comm
        );
    });
}

/// Figure 3: MST — GHS at O(Ê + V̂·log n), centr at O(n·V̂).
#[test]
fn figure_3_mst_bounds() {
    let graphs: Vec<(String, WeightedGraph)> = (0..3)
        .map(|seed| {
            (
                format!("gnp-s{seed}"),
                generators::connected_gnp(24, 0.2, generators::WeightDist::Uniform(1, 50), seed),
            )
        })
        .collect();
    let mut grid = SweepGrid::new();
    for (label, g) in &graphs {
        grid = grid.graph(label.clone(), g);
    }
    let runs = grid.run(|pt| {
        let p = CostParams::of(pt.graph);
        let label = pt.graph_label;
        let ghs = run_mst_ghs(pt.graph, NodeId::new(0), pt.delay, pt.seed).unwrap();
        let ghs_bound = (p.total_weight + p.mst_weight * log2c(p.n)) * 5;
        assert!(ghs.cost.weighted_comm <= ghs_bound, "{label}");
        let centr = run_mst_centr(pt.graph, NodeId::new(0), pt.delay, pt.seed).unwrap();
        let centr_bound = p.mst_weight * (6 * p.n as u128);
        assert!(centr.cost.weighted_comm <= centr_bound, "{label}");
        let fast = run_mst_fast(pt.graph, NodeId::new(0), pt.delay, pt.seed).unwrap();
        let w_hat = p.mst_weight.get().max(2) as f64;
        let fast_bound = (p.total_weight.get() as f64) * 5.0 * (p.n as f64).log2() * w_hat.log2();
        assert!(
            (fast.cost.weighted_comm.get() as f64) <= fast_bound,
            "fast {} > {fast_bound} ({label})",
            fast.cost.weighted_comm
        );
        ghs.cost
    });
    assert_eq!(runs.len(), 3);
}

/// Figure 4: SPT — centr at O(n·w(SPT)), synch at O(Ê + D̂·k·n·log n).
#[test]
fn figure_4_spt_bounds() {
    let seeds: Vec<u64> = (0..2).collect();
    par_map(&seeds, seeds.len(), |&seed| {
        let g = generators::connected_gnp(14, 0.25, generators::WeightDist::Uniform(1, 16), seed);
        let p = CostParams::of(&g);
        let spt_w = cost_sensitive::graph::algo::shortest_path_tree(&g, NodeId::new(0)).weight();
        let centr = run_spt_centr(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert!(
            centr.cost.weighted_comm <= spt_w * (6 * p.n as u128),
            "centr seed {seed}"
        );
        // Fact 6.5 inside the bound: w(SPT) ≤ (n−1)·V̂.
        assert!(spt_w <= p.mst_weight * (p.n as u128 - 1));

        let k = 2u128;
        let synch = run_spt_synch(&g, NodeId::new(0), 2, DelayModel::WorstCase, 0).unwrap();
        let d_hat = p.weighted_diameter.get();
        let bound = p.total_weight.get() * 2 + 40 * d_hat * k * (p.n as u128) * log2c(p.n);
        assert!(
            synch.cost.weighted_comm.get() <= bound,
            "synch {} > Ê + c·D̂·k·n·log n = {bound} (seed {seed})",
            synch.cost.weighted_comm
        );
    });
}

/// Figure 7: on the lower-bound family every correct algorithm pays
/// Ω(n·V̂); the frugal ones stay near it while flooding pays Ê.
#[test]
fn figure_7_lower_bound_family_cost_shape() {
    let g = generators::lower_bound_family(20, 8);
    let p = CostParams::of(&g);
    let nv = p.mst_weight * p.n as u128;
    // Flooding can't avoid the bypasses: Ω(Ê).
    let flood = run_flood(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
    assert!(flood.cost.weighted_comm >= p.total_weight);
    // MST_centr stays within O(n·V̂) — far below Ê.
    let centr = run_mst_centr(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
    assert!(centr.cost.weighted_comm <= nv * 6);
    assert!(centr.cost.weighted_comm < flood.cost.weighted_comm);
}

/// Section 3: the clock synchronizer hierarchy α* ≥ γ* ≥ Ω(d) on
/// heavy-chord networks, and β* pinned to the tree round trip.
#[test]
fn section_3_clock_synchronizer_hierarchy() {
    let g = generators::heavy_chord_cycle(16, 1_000);
    let p = CostParams::of(&g);
    let alpha = run_alpha_star(&g, 5, DelayModel::WorstCase, 0).unwrap();
    let beta = run_beta_star(&g, NodeId::new(0), 5, DelayModel::WorstCase, 0).unwrap();
    let gamma = run_gamma_star(&g, 5, DelayModel::WorstCase, 0).unwrap();
    let d = p.max_neighbor_distance.get() as u64;
    // α* is pinned to W.
    assert_eq!(
        alpha.stats.max_pulse_delay() as u128,
        p.max_weight.get() as u128
    );
    // γ* beats α* and respects the Ω(d) floor.
    assert!(gamma.stats.max_pulse_delay() < alpha.stats.max_pulse_delay());
    assert!(gamma.stats.max_pulse_delay() as u64 >= d);
    // β* ≤ 2·D̂ + slack.
    assert!((beta.stats.max_pulse_delay() as u128) <= 2 * p.weighted_diameter.get() + 2);
}

/// Section 5: controller overhead O(c·log² c) and cut-off ≤ 2·threshold.
#[test]
fn section_5_controller_bounds() {
    #[derive(Debug)]
    struct Noisy {
        initiator: bool,
        bounces: u32,
    }
    impl Process for Noisy {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if self.initiator {
                let all: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
                for u in all {
                    ctx.send(u, 0);
                }
            }
        }
        fn on_message(&mut self, from: NodeId, b: u32, ctx: &mut Context<'_, u32>) {
            self.bounces += 1;
            ctx.send(from, b + 1); // diverges
        }
    }
    let g = generators::grid(3, 4, generators::WeightDist::Uniform(1, 5), 8);
    let threshold = 200u64;
    let out = run_controlled(
        &g,
        NodeId::new(0),
        threshold,
        GrantPolicy::Caching,
        DelayModel::WorstCase,
        0,
        |v, _| Noisy {
            initiator: v == NodeId::new(0),
            bounces: 0,
        },
    )
    .unwrap();
    assert!(out.suspended);
    assert!(out.cost.comm_of(CostClass::Protocol).get() <= 2 * threshold as u128);
    let c = (2 * threshold) as f64;
    let bound = 4.0 * c * c.log2() * c.log2();
    assert!((out.cost.weighted_comm.get() as f64) <= bound);
}
