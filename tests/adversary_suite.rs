//! The `csp-adversary` acceptance suite: replay determinism, committed
//! beating schedules, and paper-bound compliance under searched
//! adversaries.
//!
//! The committed schedules under `tests/schedules/` were produced by
//! `examples/adversary_hunt.rs` (deterministic search, default
//! [`SearchConfig`]) and are the proof artifacts that a searched
//! adversary strictly beats `DelayModel::WorstCase` on single-strip
//! `SPT_recur` — the chaotic-Bellman–Ford regime, whose *message set*
//! depends on delivery order. Regenerate them with
//! `cargo run --release --example adversary_hunt -- tests/schedules`.

use cost_sensitive::algo::mst::ghs::Ghs;
use cost_sensitive::algo::spt::recur::SptRecur;
use cost_sensitive::prelude::*;
use std::path::PathBuf;

/// Strip depth putting `SPT_recur` in its single-strip (plain
/// Bellman–Ford) regime on every test instance.
const ONE_STRIP: u64 = 1 << 40;

fn schedule_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/schedules")
}

/// The committed beating points: family label, instance, and the
/// completion time the committed schedule must replay to. The
/// `WorstCase` baseline is recomputed fresh, so the "beats" assertion
/// can never drift out of sync with the simulator.
fn committed_points() -> Vec<(&'static str, WeightedGraph, u64)> {
    vec![
        (
            "gnp-n12",
            generators::connected_gnp(12, 0.3, generators::WeightDist::Uniform(1, 16), 42),
            92,
        ),
        (
            "gnp-n16",
            generators::connected_gnp(16, 0.25, generators::WeightDist::Uniform(1, 32), 7),
            170,
        ),
        (
            "heavy-chord-n12",
            generators::heavy_chord_cycle(12, 64),
            200,
        ),
        ("cluster-3x4", generators::cluster_graph(3, 4, 50, 11), 250),
        (
            "sparse-heavy-n14",
            generators::sparse_heavy_path(14, 100, 3),
            1101,
        ),
    ]
}

fn make_recur(v: NodeId, _: &WeightedGraph) -> SptRecur {
    SptRecur::new(v, NodeId::new(0), ONE_STRIP)
}

#[test]
fn committed_schedules_beat_worst_case() {
    for (label, g, expected) in committed_points() {
        let worst = Simulator::new(&g)
            .delay(DelayModel::WorstCase)
            .run(make_recur)
            .unwrap();
        let schedule =
            Schedule::load(&schedule_dir().join(format!("spt-recur-{label}.schedule"))).unwrap();

        // Replay through an inspectable oracle: a committed schedule
        // must reproduce its run without a single fallback decision.
        let mut oracle = ScheduleOracle::new(&schedule);
        let replayed = Simulator::new(&g)
            .run_with_oracle(&mut oracle, make_recur)
            .unwrap();
        assert_eq!(oracle.divergences, 0, "{label}: replay diverged");
        assert_eq!(
            replayed.cost.completion.get(),
            expected,
            "{label}: committed schedule no longer replays to its recorded time"
        );
        assert!(
            replayed.cost.completion > worst.cost.completion,
            "{label}: searched schedule ({}) must beat WorstCase ({})",
            replayed.cost.completion,
            worst.cost.completion,
        );
    }
}

#[test]
fn committed_schedules_respect_paper_time_and_comm_envelopes() {
    // Chaotic Bellman–Ford envelopes, generous constants in the style of
    // `tests/paper_bounds.rs`: at most n sequential relaxation waves,
    // each reaching depth D̂ and possibly relaxing one non-shortest-path
    // edge of delay up to W; and O(n·Ê) weighted communication (every
    // vertex improves its distance at most n times, each improvement
    // relaxing each incident edge once, plus the Start/Ack overhead).
    for (label, g, _) in committed_points() {
        let p = CostParams::of(&g);
        let schedule =
            Schedule::load(&schedule_dir().join(format!("spt-recur-{label}.schedule"))).unwrap();
        let run = replay(&g, make_recur, &schedule);
        let time_bound = (p.weighted_diameter.get() + p.max_weight.get() as u128) * p.n as u128;
        assert!(
            u128::from(run.cost.completion.get()) <= time_bound,
            "{label}: searched time {} exceeds n·(D̂ + W) = {time_bound}",
            run.cost.completion,
        );
        let comm_bound = p.total_weight.get() * 4 * p.n as u128;
        assert!(
            run.cost.weighted_comm.get() <= comm_bound,
            "{label}: searched comm {} exceeds 4·n·Ê = {comm_bound}",
            run.cost.weighted_comm,
        );
    }
}

#[test]
fn searched_ghs_schedule_keeps_figure_3_comm_bound() {
    // The searched adversary may stretch GHS's completion time, but its
    // weighted communication must stay inside the paper's
    // O(Ê + V̂·log n) Figure-3 bound (same constants as
    // `tests/paper_bounds.rs`).
    let g = generators::connected_gnp(12, 0.3, generators::WeightDist::Uniform(1, 16), 42);
    let p = CostParams::of(&g);
    let cfg = SearchConfig::builder()
        .random_probes(8)
        .hill_rounds(2)
        .candidates_per_round(4)
        .build()
        .expect("suite search config is statically valid");
    let out = find_worst_schedule(&g, Ghs::new, &cfg);
    let run = replay(&g, Ghs::new, &out.schedule);
    assert_eq!(run.cost.completion, out.best_time);
    let log2c = (p.n.max(2) as f64).log2().ceil() as u128;
    let bound = (p.total_weight + p.mst_weight * log2c) * 5;
    assert!(
        run.cost.weighted_comm <= bound,
        "searched GHS comm {} exceeds 5·(Ê + V̂·log n) = {bound}",
        run.cost.weighted_comm,
    );
}

#[test]
fn record_then_replay_reproduces_the_run_exactly() {
    let g = generators::connected_gnp(14, 0.3, generators::WeightDist::Uniform(1, 24), 9);
    let mut recorder = Recorder::new(ModelOracle::new(DelayModel::Uniform, 5));
    let recorded = Simulator::new(&g)
        .record_trace(1 << 16)
        .run_with_oracle(&mut recorder, Ghs::new)
        .unwrap();
    let schedule = recorder.into_schedule(Fallback::WorstCase);

    let mut oracle = ScheduleOracle::new(&schedule);
    let replayed = Simulator::new(&g)
        .record_trace(1 << 16)
        .run_with_oracle(&mut oracle, Ghs::new)
        .unwrap();

    assert_eq!(oracle.divergences, 0);
    assert_eq!(recorded.cost, replayed.cost);
    assert_eq!(recorded.trace.events(), replayed.trace.events());
    assert_eq!(recorded.truncated, replayed.truncated);
    // Final per-vertex states, compared structurally via Debug (protocol
    // states are not PartialEq).
    assert_eq!(
        format!("{:?}", recorded.states),
        format!("{:?}", replayed.states)
    );
}

#[test]
fn committed_schedule_files_round_trip_textually() {
    for (label, _, _) in committed_points() {
        let path = schedule_dir().join(format!("spt-recur-{label}.schedule"));
        let schedule = Schedule::load(&path).unwrap();
        assert!(!schedule.is_empty(), "{label}");
        let reparsed = Schedule::from_text(&schedule.to_text()).unwrap();
        assert_eq!(schedule, reparsed, "{label}");
    }
}
