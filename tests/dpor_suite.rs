//! DPOR suite: the dependence relation and the sleep-set explorer,
//! checked against the two ground truths the reduction is allowed to
//! exist by.
//!
//! * **Equivalence**: permuting *independent* (vertex-disjoint)
//!   adjacent decisions of a recorded schedule and replaying it by
//!   per-channel occurrence produces a bit-identical run — the
//!   Mazurkiewicz classes the explorer enumerates really are
//!   equivalence classes of runs.
//! * **Coverage**: on an exhaustively enumerable instance the explorer's
//!   worst completion equals the worst over *every* delay assignment,
//!   and on a larger instance it dominates a 10k-sample random sweep.

use cost_sensitive::algo::flood::Flood;
use cost_sensitive::prelude::*;
use proptest::prelude::*;

fn flood() -> impl Fn(NodeId, &WeightedGraph) -> Flood + Copy {
    |v, _| Flood::new(v == NodeId::new(0))
}

/// Strategy: a small connected weighted graph where every decision has
/// at least one alternative order to permute into.
fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (4usize..=10, 0.1f64..0.5, 2u64..=4, any::<u64>()).prop_map(|(n, p, wmax, seed)| {
        generators::connected_gnp(n, p, generators::WeightDist::Uniform(1, wmax), seed)
    })
}

/// Replays `decisions` keyed by per-channel occurrence and returns the
/// run, asserting the transcript covered every dispatch.
fn replay_by_occurrence(g: &WeightedGraph, decisions: &[Decision]) -> CostReport {
    let mut oracle = OccurrenceOracle::new(decisions);
    let run = Simulator::new(g)
        .run_with_oracle(&mut oracle, flood())
        .expect("flood quiesces under any admissible schedule");
    assert_eq!(oracle.unmatched, 0, "replay must stay on the transcript");
    run.cost
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Swapping adjacent *independent* decisions — disjoint vertex sets,
    /// so unordered by the dependence relation — is invisible to the
    /// run: the occurrence-keyed replay is bit-identical, and the trace
    /// keeps its class signature.
    #[test]
    fn independent_swaps_replay_bit_identically(
        g in arb_graph(),
        seed in any::<u64>(),
        picks in any::<u64>(),
    ) {
        let (_, schedule) = record(
            &g,
            flood(),
            ModelOracle::new(DelayModel::Uniform, seed),
            Fallback::WorstCase,
        );
        let (_, trace) = Trace::record::<Flood, _>(&g, flood(), &schedule);
        let baseline = replay_by_occurrence(&g, &schedule.decisions);
        let signature = trace.class_signature();

        // Permute: each byte of `picks` selects an adjacent pair; swap
        // it only if the two dispatches touch disjoint vertices. With
        // zero swaps the assertions below hold trivially.
        let steps = trace.steps();
        let mut decisions = schedule.decisions.clone();
        let mut order: Vec<usize> = (0..steps.len()).collect();
        for k in 0..8 {
            let i = ((picks >> (8 * k)) as usize & 0xff) % (steps.len() - 1);
            if !steps[order[i]].dependent(&steps[order[i + 1]]) {
                order.swap(i, i + 1);
                decisions.swap(i, i + 1);
            }
        }

        // Bit-identical run through the occurrence replay...
        let permuted = replay_by_occurrence(&g, &decisions);
        prop_assert_eq!(baseline, permuted);
        // ...and the permuted transcript is the same Mazurkiewicz class.
        let mut rec = Recorder::new(OccurrenceOracle::new(&decisions));
        Simulator::new(&g)
            .run_with_oracle(&mut rec, flood())
            .expect("flood quiesces");
        let resched = rec.into_schedule(Fallback::WorstCase);
        let (_, retrace) = Trace::record::<Flood, _>(&g, flood(), &resched);
        prop_assert_eq!(retrace.class_signature(), signature);
    }

    /// Swapping a *dependent* adjacent pair is a different class (or an
    /// impossible transcript): the dependence relation is not vacuous.
    #[test]
    fn dependent_pairs_exist_and_are_ordered(g in arb_graph(), seed in any::<u64>()) {
        let (_, schedule) = record(
            &g,
            flood(),
            ModelOracle::new(DelayModel::Uniform, seed),
            Fallback::WorstCase,
        );
        let (_, trace) = Trace::record::<Flood, _>(&g, flood(), &schedule);
        let steps = trace.steps();
        // Flooding always chains sends off deliveries, so some pair of
        // dispatches must share a vertex.
        let any_dependent = (0..steps.len())
            .flat_map(|i| (i + 1..steps.len()).map(move |j| (i, j)))
            .any(|(i, j)| steps[i].dependent(&steps[j]));
        prop_assert!(any_dependent);
    }
}

/// Fixed-prefix enumeration oracle: plays recorded choices, extends
/// fresh dispatches with the fastest admissible delay.
struct EnumOracle<'a> {
    path: &'a mut Vec<(u64, u64)>,
    cursor: usize,
}

impl DelayOracle for EnumOracle<'_> {
    fn delay(&mut self, msg: &MsgInfo) -> u64 {
        if self.cursor < self.path.len() {
            let choice = self.path[self.cursor].0;
            self.cursor += 1;
            choice
        } else {
            self.path.push((1, msg.weight.get()));
            self.cursor += 1;
            1
        }
    }
}

/// Worst completion over every delay assignment, by backtracking DFS.
fn enumerate_worst(g: &WeightedGraph, cap: u64) -> (u64, u64) {
    let mut path: Vec<(u64, u64)> = Vec::new();
    let (mut leaves, mut worst) = (0u64, 0u64);
    loop {
        let mut oracle = EnumOracle {
            path: &mut path,
            cursor: 0,
        };
        let run = Simulator::new(g)
            .run_with_oracle(&mut oracle, flood())
            .expect("flood quiesces");
        leaves += 1;
        worst = worst.max(run.cost.completion.get());
        assert!(leaves <= cap, "instance too large to enumerate");
        while let Some(last) = path.last_mut() {
            if last.0 < last.1 {
                last.0 += 1;
                break;
            }
            path.pop();
        }
        if path.is_empty() {
            return (leaves, worst);
        }
    }
}

/// On a fully enumerable instance, the explorer's worst equals the
/// naive enumeration's worst — with far fewer evaluations.
#[test]
fn explorer_matches_full_enumeration_on_a_small_instance() {
    let g = generators::connected_gnp(6, 0.3, generators::WeightDist::Uniform(1, 2), 21);
    let (leaves, naive_worst) = enumerate_worst(&g, 1 << 16);
    let cfg = SearchConfig::builder().exhaustive(0).build().unwrap();
    let out = explore_exhaustive(&g, flood(), &cfg);
    assert_eq!(out.strategy, "exhaustive");
    assert_eq!(out.best_time.get(), naive_worst);
    assert!(
        (out.evaluations as u64) < leaves,
        "explorer must not out-enumerate the cube ({} vs {leaves})",
        out.evaluations
    );
    // The witness replays to exactly the reported worst.
    let rerun = replay(&g, flood(), &out.schedule);
    assert_eq!(rerun.cost.completion, out.best_time);
}

/// On the benchmark's n=8 instance, the explorer dominates a 10k-sample
/// random schedule sweep.
#[test]
fn explorer_dominates_ten_thousand_random_schedules() {
    let g = generators::connected_gnp(8, 0.25, generators::WeightDist::Uniform(1, 2), 8);
    let cfg = SearchConfig::builder().exhaustive(0).build().unwrap();
    let out = explore_exhaustive(&g, flood(), &cfg);
    let mut sampled_worst = 0;
    for seed in 0..10_000u64 {
        let run = Simulator::new(&g)
            .run_with_oracle(&mut ModelOracle::new(DelayModel::Uniform, seed), flood())
            .expect("flood quiesces");
        sampled_worst = sampled_worst.max(run.cost.completion.get());
    }
    assert!(
        out.best_time.get() >= sampled_worst,
        "explorer worst {} lost to a random sample's {sampled_worst}",
        out.best_time
    );
}
