//! Acceptance check for the parallel sweep driver: fanning a grid over
//! worker threads must return exactly the per-run [`CostReport`]s that a
//! sequential execution produces, in the same grid order.

use cost_sensitive::prelude::*;

#[test]
fn eight_seed_three_graph_sweep_parallel_equals_sequential() {
    let chord = generators::heavy_chord_cycle(24, 500);
    let gnp = generators::connected_gnp(24, 0.2, generators::WeightDist::Uniform(1, 50), 7);
    let torus = generators::torus(5, 5, generators::WeightDist::Uniform(1, 16), 3);
    let grid = SweepGrid::new()
        .graph("heavy-chord", &chord)
        .graph("gnp-24", &gnp)
        .graph("torus-5x5", &torus)
        .seeds(0..8)
        .delay(DelayModel::Uniform);

    let ghs = |pt: &SweepPoint<'_>| {
        run_mst_ghs(pt.graph, NodeId::new(0), pt.delay, pt.seed)
            .unwrap()
            .cost
    };
    let par = grid.clone().threads(4).run(ghs);
    let seq = grid.run_sequential(ghs);

    assert_eq!(par.len(), 3 * 8);
    assert_eq!(
        par, seq,
        "parallel sweep must be bit-identical to sequential"
    );
    // Grid order: graphs outermost in declaration order, seeds inside.
    assert_eq!(par[0].graph_label, "heavy-chord");
    assert_eq!(par[8].graph_label, "gnp-24");
    assert_eq!(
        (par[23].graph_label.as_str(), par[23].seed),
        ("torus-5x5", 7)
    );
}

#[test]
fn sweep_summary_aggregates_the_grid() {
    let g = generators::connected_gnp(16, 0.25, generators::WeightDist::Uniform(1, 20), 1);
    let runs = SweepGrid::new()
        .graph("gnp-16", &g)
        .seeds(0..4)
        .delays([DelayModel::WorstCase, DelayModel::Eager])
        .run(|pt| {
            run_flood(pt.graph, NodeId::new(0), pt.delay, pt.seed)
                .unwrap()
                .cost
        });
    let s = summarize(&runs);
    assert_eq!(s.runs, 8);
    assert_eq!(
        s.total_messages,
        runs.iter().map(|r| r.cost.messages).sum::<u64>()
    );
    assert_eq!(
        s.max_completion,
        runs.iter().map(|r| r.cost.completion).max().unwrap()
    );
}
