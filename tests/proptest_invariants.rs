//! Property-based tests over randomly generated weighted graphs: the
//! paper's structural invariants must hold on *every* connected graph,
//! not just the curated families.

use cost_sensitive::prelude::*;
use proptest::prelude::*;

/// Strategy: a connected weighted graph with `3..=18` vertices.
fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (3usize..=18, 0.0f64..0.5, 1u64..=64, any::<u64>()).prop_map(|(n, p, wmax, seed)| {
        generators::connected_gnp(n, p, generators::WeightDist::Uniform(1, wmax), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemmas 2.4 & 2.5: the SLT is simultaneously light and shallow.
    #[test]
    fn slt_is_shallow_and_light(g in arb_graph(), q in 1u64..=5) {
        let p = CostParams::of(&g);
        let slt = shallow_light_tree(&g, NodeId::new(0), q);
        prop_assert!(slt.tree.is_spanning());
        // q·w(T) ≤ (q+2)·V̂
        prop_assert!(slt.weight().get() * q as u128 <= p.mst_weight.get() * (q as u128 + 2));
        // height ≤ (q+1)·D̂
        prop_assert!(slt.height() <= p.weighted_diameter * (q as u128 + 1));
    }

    /// Fact 6.3: Diam(MST) ≤ V̂ ≤ (n−1)·D̂.
    #[test]
    fn fact_6_3_mst_diameter_chain(g in arb_graph()) {
        let p = CostParams::of(&g);
        prop_assert!(p.mst_diameter <= p.mst_weight);
        prop_assert!(p.mst_weight <= p.weighted_diameter * (p.n as u128 - 1).max(1));
    }

    /// Fact 6.5: w(SPT) ≤ (n−1)·V̂, from any source.
    #[test]
    fn fact_6_5_spt_weight(g in arb_graph(), src in 0usize..18) {
        let s = NodeId::new(src % g.node_count());
        let p = CostParams::of(&g);
        let spt = cost_sensitive::graph::algo::shortest_path_tree(&g, s);
        prop_assert!(spt.weight() <= p.mst_weight * (p.n as u128 - 1).max(1));
        // And the SPT realizes the distances.
        let dist = cost_sensitive::graph::algo::distances(&g, s);
        for v in g.nodes() {
            prop_assert_eq!(spt.depth(v), dist[v.index()]);
        }
    }

    /// The distributed GHS always produces the canonical MST, even under
    /// randomized delays.
    #[test]
    fn ghs_is_always_the_canonical_mst(g in arb_graph(), seed in any::<u64>()) {
        let reference = cost_sensitive::graph::algo::prim_mst(&g, NodeId::new(0));
        let out = run_mst_ghs(&g, NodeId::new(0), DelayModel::Uniform, seed).unwrap();
        prop_assert_eq!(out.tree.weight(), reference.weight());
    }

    /// SPT_recur computes exact distances for any strip depth.
    #[test]
    fn spt_recur_is_exact_for_any_strip(g in arb_graph(), delta in 1u64..=64, seed in any::<u64>()) {
        let reference = cost_sensitive::graph::algo::distances(&g, NodeId::new(0));
        let out = run_spt_recur(&g, NodeId::new(0), delta, DelayModel::Uniform, seed).unwrap();
        prop_assert_eq!(&out.dists[..], &reference[..]);
    }

    /// d ≤ W always; and the neighbor-path cover's radius is ≤ d.
    #[test]
    fn neighbor_distance_invariants(g in arb_graph()) {
        let p = CostParams::of(&g);
        prop_assert!(p.max_neighbor_distance <= p.max_weight.to_cost());
        let cover = Cover::neighbor_paths(&g);
        prop_assert!(cover.radius(&g) <= p.max_neighbor_distance);
    }

    /// Cover coarsening: subsumption and the radius bound for random k.
    #[test]
    fn coarsening_contract(g in arb_graph(), k in 1usize..=4) {
        let initial = Cover::neighbor_paths(&g);
        let rad_s = initial.radius(&g).max(Cost::new(1));
        let coarse = coarsen(&g, &initial, k);
        prop_assert!(coarse.subsumes(&initial));
        prop_assert!(coarse.radius(&g) <= rad_s * (2 * k as u128 + 1));
    }

    /// Ball partitions are true partitions with bounded tree depth.
    #[test]
    fn ball_partition_contract(g in arb_graph(), k in 2usize..=6) {
        let part = ball_partition(&g, k);
        let n = g.node_count();
        let mut seen = vec![false; n];
        for cl in &part.clusters {
            for &v in cl {
                prop_assert!(!seen[v.index()]);
                seen[v.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        let depth_bound = ((n as f64).log2() / (k as f64).log2()).ceil() as usize + 1;
        prop_assert!(part.max_tree_depth() <= depth_bound);
    }

    /// The flood tree under worst-case delays is a shortest-path tree.
    #[test]
    fn flood_under_worst_case_realizes_distances(g in arb_graph(), src in 0usize..18) {
        let s = NodeId::new(src % g.node_count());
        let out = run_flood(&g, s, DelayModel::WorstCase, 0).unwrap();
        let dist = cost_sensitive::graph::algo::distances(&g, s);
        for v in g.nodes() {
            prop_assert_eq!(out.tree.depth(v), dist[v.index()]);
        }
    }

    /// Global function outputs equal the sequential fold at every vertex.
    #[test]
    fn global_outputs_are_uniform_and_correct(
        g in arb_graph(),
        inputs_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let n = g.node_count();
        let inputs: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(inputs_seed | 1) % 1000).collect();
        let out = compute_global(
            &g, NodeId::new(0), Xor, &inputs, TreeKind::Slt { q: 2 },
            DelayModel::Uniform,
        ).unwrap();
        let expect = fold_all(&Xor, &inputs);
        prop_assert_eq!(out.value, expect);
        prop_assert!(out.outputs.iter().all(|&o| o == expect));
    }
}

/// A second property block for the protocol transformers and utilities.
mod transformers {
    use super::*;
    use cost_sensitive::algo::cast::{flood_tree, run_echo};
    use cost_sensitive::algo::flood::Flood;
    use cost_sensitive::graph::io::{parse_edge_list, to_edge_list};
    use cost_sensitive::graph::slt::shallow_light_tree_with_rule;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The controller never interferes with a correct execution, for
        /// either grant policy, on any connected graph.
        #[test]
        fn controller_never_cuts_correct_floods(g in arb_graph(), policy_caching in any::<bool>()) {
            let policy = if policy_caching { GrantPolicy::Caching } else { GrantPolicy::Naive };
            let threshold = (g.total_weight() * 2).get() as u64;
            let out = run_controlled(
                &g, NodeId::new(0), threshold, policy, DelayModel::WorstCase, 0,
                |v, _| Flood::new(v == NodeId::new(0)),
            ).unwrap();
            prop_assert!(!out.suspended, "{policy:?} cut a correct flood");
            prop_assert!(out.states.iter().all(Flood::reached));
        }

        /// The verbatim Figure-5 breakpoint rule satisfies Lemma 2.4 (the
        /// weight bound) on every graph.
        #[test]
        fn consecutive_pairs_rule_weight_bound(g in arb_graph(), q in 1u64..=4) {
            let p = CostParams::of(&g);
            let slt = shallow_light_tree_with_rule(
                &g, NodeId::new(0), q, BreakpointRule::ConsecutivePairs,
            );
            prop_assert!(slt.tree.is_spanning());
            prop_assert!(slt.weight().get() * q as u128 <= p.mst_weight.get() * (q as u128 + 2));
        }

        /// Edge-list serialization round-trips every generated graph.
        #[test]
        fn edge_list_round_trip(g in arb_graph()) {
            let back = parse_edge_list(&to_edge_list(&g)).unwrap();
            prop_assert_eq!(back.node_count(), g.node_count());
            prop_assert_eq!(back.total_weight(), g.total_weight());
            for (a, b) in g.edges().zip(back.edges()) {
                prop_assert_eq!(a.endpoints(), b.endpoints());
                prop_assert_eq!(a.weight(), b.weight());
            }
        }

        /// Echo over a flood tree costs exactly two tree weights and
        /// reaches everyone, under any seed.
        #[test]
        fn echo_cost_identity(g in arb_graph(), seed in any::<u64>()) {
            let tree = flood_tree(&g, NodeId::new(0), DelayModel::Uniform, seed).unwrap();
            let out = run_echo(&g, &tree, 5, DelayModel::Uniform, seed).unwrap();
            prop_assert!(out.payloads.iter().all(|&p| p == 5));
            prop_assert_eq!(out.cost.weighted_comm, tree.weight() * 2);
        }

        /// Termination detection: ack count equals message count and the
        /// detection time equals the completion time.
        #[test]
        fn termination_detection_identity(g in arb_graph(), seed in any::<u64>()) {
            let out = run_with_termination_detection(
                &g, NodeId::new(0), DelayModel::Uniform, seed,
                |v, _| Flood::new(v == NodeId::new(0)),
            ).unwrap();
            prop_assert_eq!(
                out.cost.messages_of(CostClass::Protocol),
                out.cost.messages_of(CostClass::Auxiliary)
            );
            prop_assert_eq!(out.detected_at, out.cost.completion);
        }
    }
}

/// Definition 3.1 contracts for the tree edge-cover, at reduced case
/// counts (the construction runs many Dijkstra sweeps).
mod edge_cover {
    use super::*;

    fn small_graph() -> impl Strategy<Value = WeightedGraph> {
        (4usize..=12, 0.1f64..0.4, 1u64..=32, any::<u64>()).prop_map(|(n, p, wmax, seed)| {
            generators::connected_gnp(n, p, generators::WeightDist::Uniform(1, wmax), seed)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn tree_edge_cover_contract(g in small_graph()) {
            let p = CostParams::of(&g);
            let n = g.node_count();
            let cover = tree_edge_cover(&g);
            // (3) every edge's endpoints share a tree.
            for (i, e) in g.edges().enumerate() {
                let t = &cover.trees[cover.home_tree[i]];
                prop_assert!(t.contains(e.u()) && t.contains(e.v()));
            }
            // (2) depth O(d·log n) with slack 6.
            let d = p.max_neighbor_distance.max(Cost::new(1));
            let log_n = (n.max(2) as f64).log2().ceil() as u128;
            prop_assert!(cover.max_depth() <= d * (6 * log_n));
            // (1) vertex degree O(log n) with slack 6.
            prop_assert!(cover.max_vertex_degree() as u128 <= (6 * log_n).max(2));
        }

        #[test]
        fn gamma_star_pulses_on_random_graphs(g in small_graph(), seed in any::<u64>()) {
            let out = run_gamma_star(&g, 3, DelayModel::Uniform, seed).unwrap();
            prop_assert_eq!(out.stats.min_pulses(), 3);
            prop_assert!(out.stats.is_monotone());
        }
    }
}
