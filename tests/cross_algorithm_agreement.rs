//! Cross-crate integration: every distributed algorithm must agree with
//! its sequential reference, across graph families, delay models and
//! seeds.

use cost_sensitive::prelude::*;

fn families() -> Vec<(&'static str, WeightedGraph)> {
    vec![
        (
            "gnp",
            generators::connected_gnp(18, 0.2, generators::WeightDist::Uniform(1, 30), 42),
        ),
        (
            "grid",
            generators::grid(4, 4, generators::WeightDist::Uniform(1, 10), 7),
        ),
        ("lower-bound", generators::lower_bound_family(14, 5)),
        ("heavy-chords", generators::heavy_chord_cycle(14, 100)),
        ("cluster", generators::cluster_graph(3, 5, 40, 9)),
        ("path", generators::path(12, |i| (i as u64 % 7) + 1)),
        (
            "complete",
            generators::complete(9, |i, j| ((i * j) % 11 + 1) as u64),
        ),
    ]
}

#[test]
fn all_mst_algorithms_agree_with_prim() {
    for (name, g) in families() {
        let reference = cost_sensitive::graph::algo::prim_mst(&g, NodeId::new(0)).weight();
        let ghs = run_mst_ghs(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert_eq!(ghs.tree.weight(), reference, "GHS on {name}");
        let centr = run_mst_centr(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert_eq!(centr.tree.weight(), reference, "centr on {name}");
        let fast = run_mst_fast(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert_eq!(fast.tree.weight(), reference, "fast on {name}");
        let hybrid = run_mst_hybrid(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert_eq!(hybrid.tree.weight(), reference, "hybrid on {name}");
    }
}

#[test]
fn all_spt_algorithms_agree_with_dijkstra() {
    for (name, g) in families() {
        let reference = cost_sensitive::graph::algo::distances(&g, NodeId::new(0));
        let centr = run_spt_centr(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert_eq!(centr.dists, reference, "SPT_centr on {name}");
        let recur = run_spt_recur(&g, NodeId::new(0), 4, DelayModel::WorstCase, 0).unwrap();
        assert_eq!(recur.dists, reference, "SPT_recur on {name}");
        let ideal = run_spt_synch_ideal(&g, NodeId::new(0));
        assert_eq!(ideal.dists, reference, "SPT_synch_ideal on {name}");
    }
}

#[test]
fn spt_synch_under_gamma_w_matches_dijkstra_on_every_family() {
    // Smaller instances: γ_w simulates 4·D̂ virtual pulses.
    let cases = vec![
        (
            "gnp",
            generators::connected_gnp(10, 0.25, generators::WeightDist::Uniform(1, 8), 3),
        ),
        ("path", generators::path(8, |i| (i as u64 % 4) + 1)),
        ("cluster", generators::cluster_graph(2, 4, 12, 5)),
    ];
    for (name, g) in cases {
        let reference = cost_sensitive::graph::algo::distances(&g, NodeId::new(0));
        for k in [2, 4] {
            let out = run_spt_synch(&g, NodeId::new(0), k, DelayModel::Uniform, 1).unwrap();
            assert_eq!(out.dists, reference, "SPT_synch k={k} on {name}");
        }
    }
}

#[test]
fn mst_algorithms_are_delay_schedule_independent() {
    // The canonical MST must come out identical under every adversary.
    let g = generators::connected_gnp(16, 0.25, generators::WeightDist::Uniform(1, 40), 17);
    let reference = cost_sensitive::graph::algo::prim_mst(&g, NodeId::new(0)).weight();
    for delay in [
        DelayModel::WorstCase,
        DelayModel::Eager,
        DelayModel::Proportional { num: 1, den: 2 },
    ] {
        let out = run_mst_ghs(&g, NodeId::new(0), delay, 0).unwrap();
        assert_eq!(out.tree.weight(), reference, "{delay:?}");
    }
    for seed in 0..10 {
        let out = run_mst_ghs(&g, NodeId::new(0), DelayModel::Uniform, seed).unwrap();
        assert_eq!(out.tree.weight(), reference, "uniform seed {seed}");
        let fast = run_mst_fast(&g, NodeId::new(0), DelayModel::Uniform, seed).unwrap();
        assert_eq!(fast.tree.weight(), reference, "fast uniform seed {seed}");
    }
}

#[test]
fn spanning_structures_span_from_any_root() {
    let g = generators::cluster_graph(3, 4, 25, 2);
    for r in 0..g.node_count() {
        let root = NodeId::new(r);
        assert!(run_flood(&g, root, DelayModel::WorstCase, 0)
            .unwrap()
            .tree
            .is_spanning());
        assert!(run_dfs(&g, root, DelayModel::WorstCase, 0)
            .unwrap()
            .tree
            .is_spanning());
        assert!(run_con_hybrid(&g, root, DelayModel::WorstCase, 0)
            .unwrap()
            .tree
            .is_spanning());
    }
}

#[test]
fn global_functions_agree_with_sequential_folds_everywhere() {
    for (name, g) in families() {
        let inputs: Vec<u64> = (0..g.node_count() as u64).map(|i| i * 31 % 17).collect();
        for kind in [TreeKind::Slt { q: 2 }, TreeKind::Mst, TreeKind::Spt] {
            let out = compute_global(&g, NodeId::new(0), Sum, &inputs, kind, DelayModel::Uniform)
                .unwrap();
            assert_eq!(out.value, fold_all(&Sum, &inputs), "{name} {kind:?}");
        }
    }
}

#[test]
fn distributed_slt_matches_sequential_slt() {
    let g = generators::connected_gnp(14, 0.25, generators::WeightDist::Uniform(1, 20), 5);
    let sequential = shallow_light_tree(&g, NodeId::new(0), 2);
    let distributed = run_slt_dist(&g, NodeId::new(0), 2, DelayModel::WorstCase, 0).unwrap();
    assert_eq!(distributed.slt.weight(), sequential.weight());
    assert_eq!(distributed.slt.height(), sequential.height());
}
