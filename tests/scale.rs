//! Moderate-scale runs: the protocols must stay correct (and the
//! simulator efficient) well beyond the unit-test sizes. Independent
//! seeds fan out through `csp_sim::sweep` to use every available core.

use cost_sensitive::prelude::*;

#[test]
fn ghs_at_n_200() {
    let g = generators::connected_gnp(200, 0.03, generators::WeightDist::Uniform(1, 100), 17);
    let reference = cost_sensitive::graph::algo::prim_mst(&g, NodeId::new(0)).weight();
    let sim_seeds: Vec<u64> = vec![3, 11];
    par_map(&sim_seeds, sim_seeds.len(), |&seed| {
        let out = run_mst_ghs(&g, NodeId::new(0), DelayModel::Uniform, seed).unwrap();
        assert_eq!(out.tree.weight(), reference, "sim seed {seed}");
    });
}

#[test]
fn spt_recur_at_n_150() {
    let g = generators::connected_gnp(150, 0.04, generators::WeightDist::Uniform(1, 64), 23);
    let reference = cost_sensitive::graph::algo::distances(&g, NodeId::new(0));
    let out = run_spt_recur(&g, NodeId::new(0), 16, DelayModel::Uniform, 5).unwrap();
    assert_eq!(out.dists, reference);
}

#[test]
fn flood_on_a_large_torus() {
    let g = generators::torus(16, 16, generators::WeightDist::Uniform(1, 32), 9);
    let runs = SweepGrid::new()
        .graph("torus-16x16", &g)
        .seeds(0..3)
        .delays([DelayModel::WorstCase, DelayModel::Uniform])
        .run(|pt| {
            let out = run_flood(pt.graph, NodeId::new(0), pt.delay, pt.seed).unwrap();
            assert!(out.tree.is_spanning(), "seed {} {:?}", pt.seed, pt.delay);
            out.cost
        });
    let s = summarize(&runs);
    assert_eq!(s.runs, 6);
    // Every run independently respects the flood bound: ≤ 2·Ê.
    for r in &runs {
        assert!(r.cost.weighted_comm <= g.total_weight() * 2);
    }
}

#[test]
fn slt_on_a_dense_graph() {
    let g = generators::connected_gnp(300, 0.05, generators::WeightDist::Uniform(1, 128), 31);
    let p = CostParams::of(&g);
    let slt = shallow_light_tree(&g, NodeId::new(0), 2);
    assert!(slt.tree.is_spanning());
    assert!(slt.weight().get() * 2 <= p.mst_weight.get() * 4);
    assert!(slt.height() <= p.weighted_diameter * 3);
}

#[test]
fn global_function_on_a_hypercube_q7() {
    let g = generators::hypercube(7, generators::WeightDist::Uniform(1, 16), 2);
    let inputs: Vec<u64> = (0..128u64).map(|i| i * 37 % 251).collect();
    let out = compute_global(
        &g,
        NodeId::new(0),
        Xor,
        &inputs,
        TreeKind::Slt { q: 2 },
        DelayModel::Uniform,
    )
    .unwrap();
    assert_eq!(out.value, fold_all(&Xor, &inputs));
}

#[test]
fn mst_fast_at_n_128() {
    let g = generators::connected_gnp(128, 0.05, generators::WeightDist::Uniform(1, 256), 41);
    let reference = cost_sensitive::graph::algo::prim_mst(&g, NodeId::new(0)).weight();
    let out = run_mst_fast(&g, NodeId::new(0), DelayModel::Uniform, 1).unwrap();
    assert_eq!(out.tree.weight(), reference);
}
