//! Hunt for delay schedules worse than the fixed `WorstCase` model.
//!
//! Sweeps the Figure-2/3/4 protocols over small graph families, runs the
//! `csp-adversary` search on each point and prints the searched-vs-
//! `WorstCase` completion-time gap. Pass a directory to also write every
//! schedule that beat `WorstCase`:
//!
//! ```text
//! cargo run --release --example adversary_hunt [-- out_dir]
//! ```

use csp_adversary::{find_worst_schedule, SearchConfig, SearchOutcome};
use csp_algo::dfs::Dfs;
use csp_algo::flood::Flood;
use csp_algo::full_info::{FullInfoGrowth, MstRule, SptRule};
use csp_algo::mst::ghs::Ghs;
use csp_algo::spt::recur::SptRecur;
use csp_graph::generators::{self, WeightDist};
use csp_graph::{NodeId, WeightedGraph};
use std::path::PathBuf;

fn families() -> Vec<(String, WeightedGraph)> {
    vec![
        (
            "gnp-n12".to_string(),
            generators::connected_gnp(12, 0.3, WeightDist::Uniform(1, 16), 42),
        ),
        (
            "gnp-n16".to_string(),
            generators::connected_gnp(16, 0.25, WeightDist::Uniform(1, 32), 7),
        ),
        (
            "heavy-chord-n12".to_string(),
            generators::heavy_chord_cycle(12, 64),
        ),
        (
            "cluster-3x4".to_string(),
            generators::cluster_graph(3, 4, 50, 11),
        ),
        (
            "sparse-heavy-n14".to_string(),
            generators::sparse_heavy_path(14, 100, 3),
        ),
    ]
}

fn hunt(
    protocol: &str,
    family: &str,
    out: SearchOutcome,
    out_dir: Option<&PathBuf>,
    found: &mut u32,
) {
    let marker = if out.beats_worst_case() {
        "  <-- beats WorstCase"
    } else {
        ""
    };
    println!(
        "{protocol:<12} {family:<18} worst-case {:>6}  searched {:>6}  gap {:>5.3}  via {:<13} ({} evals){marker}",
        out.worst_case.get(),
        out.best_time.get(),
        out.gap(),
        out.strategy,
        out.evaluations,
    );
    if out.beats_worst_case() {
        *found += 1;
        if let Some(dir) = out_dir {
            let path = dir.join(format!("{protocol}-{family}.schedule"));
            out.schedule
                .save(
                    &path,
                    &[
                        format!("{protocol} on {family}"),
                        format!(
                            "worst-case {} < searched {} (strategy: {})",
                            out.worst_case.get(),
                            out.best_time.get(),
                            out.strategy
                        ),
                    ],
                )
                .expect("write schedule");
            println!("             wrote {}", path.display());
        }
    }
}

fn main() {
    let out_dir = std::env::args().nth(1).map(PathBuf::from);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let cfg = SearchConfig::default();
    let root = NodeId::new(0);
    let mut found = 0u32;

    for (family, g) in &families() {
        let out = find_worst_schedule(g, |v, _| Flood::new(v == root), &cfg);
        hunt("flood", family, out, out_dir.as_ref(), &mut found);

        let out = find_worst_schedule(g, |v, g| Dfs::new(v, g, root), &cfg);
        hunt("dfs", family, out, out_dir.as_ref(), &mut found);

        let out = find_worst_schedule(g, Ghs::new, &cfg);
        hunt("ghs", family, out, out_dir.as_ref(), &mut found);

        let out = find_worst_schedule(g, |v, g| FullInfoGrowth::new(v, g, root, MstRule), &cfg);
        hunt("fullinfo-mst", family, out, out_dir.as_ref(), &mut found);

        let out = find_worst_schedule(g, |v, g| FullInfoGrowth::new(v, g, root, SptRule), &cfg);
        hunt("fullinfo-spt", family, out, out_dir.as_ref(), &mut found);

        // Single-strip SPT_recur degenerates to chaotic Bellman–Ford —
        // the one protocol here whose *message set* depends on delivery
        // order, so selectively fast messages can out-delay WorstCase.
        let out = find_worst_schedule(g, |v, _| SptRecur::new(v, root, 1 << 40), &cfg);
        hunt("spt-recur", family, out, out_dir.as_ref(), &mut found);
    }

    println!("\n{found} protocol x family points where the searched adversary beats WorstCase");
}
