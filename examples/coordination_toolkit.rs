//! The coordination toolkit: leader election, termination detection, and
//! message tracing on one network.
//!
//! The paper's machinery composes: GHS elects a leader (the [Awe87]
//! reduction), Dijkstra–Scholten acknowledgments tell the initiator when
//! a diffusing computation has globally finished ([DS80], the model of
//! Section 5), and the simulator's trace facility shows the adversarial
//! schedule that was actually played.
//!
//! ```text
//! cargo run --example coordination_toolkit
//! ```

use cost_sensitive::algo::flood::Flood;
use cost_sensitive::algo::leader::run_leader_election;
use cost_sensitive::algo::termination::{detection_overhead, run_with_termination_detection};
use cost_sensitive::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::torus(4, 5, generators::WeightDist::Uniform(1, 9), 2026);
    let p = CostParams::of(&g);
    println!("network: {p}");
    println!();

    // 1. Elect a leader: GHS + one announcement sweep over the MST.
    let election = run_leader_election(&g, DelayModel::Uniform, 1)?;
    println!(
        "leader election: {} elected  ({}; announcement overhead {})",
        election.leader,
        election.cost,
        election.cost.comm_of(CostClass::Auxiliary),
    );

    // 2. The leader initiates a broadcast; Dijkstra–Scholten
    //    acknowledgments let it *know* when everyone has been reached.
    let root = election.leader;
    let detected = run_with_termination_detection(&g, root, DelayModel::Uniform, 7, |v, _| {
        Flood::new(v == root)
    })?;
    println!(
        "broadcast + termination detection: detected at {} ({}; ack overhead {})",
        detected.detected_at,
        detected.cost,
        detection_overhead(&detected.cost),
    );
    assert!(detected.states.iter().all(Flood::reached));

    // 3. Replay with tracing to inspect the adversarial schedule.
    let run = Simulator::new(&g)
        .delay(DelayModel::Uniform)
        .seed(7)
        .record_trace(4096)
        .run(|v, _| Flood::new(v == root))?;
    let trace = &run.trace;
    println!();
    println!(
        "traced replay: {} deliveries, FIFO per channel: {}",
        trace.len(),
        trace.is_fifo()
    );
    let max_latency = trace
        .events()
        .iter()
        .map(|e| e.latency())
        .max()
        .unwrap_or(0);
    println!(
        "max in-flight latency: {max_latency} (≤ W = {})",
        p.max_weight
    );
    println!();
    println!("first five deliveries:");
    for e in trace.events().iter().take(5) {
        println!("  {e}");
    }

    // 4. Export the flood tree for visualization.
    let parents: Vec<Option<NodeId>> = run.states.iter().map(Flood::parent).collect();
    let tree_edges: Vec<EdgeId> = g
        .nodes()
        .filter_map(|v| {
            parents[v.index()].map(|u| g.edge_between(v, u).expect("parent is a neighbor"))
        })
        .collect();
    let dot = g.to_dot(&tree_edges);
    println!();
    println!(
        "Graphviz export: {} bytes, {} bold tree edges (pipe to `dot -Tsvg`)",
        dot.len(),
        tree_edges.len()
    );
    Ok(())
}
