//! Taming a diverging protocol with the controller (Section 5).
//!
//! A buggy "echo" protocol bounces every message back forever. Run
//! naked, it would flood the network without end (the simulator's event
//! budget is the only thing that stops it). Run under the controller
//! with threshold `c_π`, it is cut off after consuming at most `2·c_π`
//! weighted units, while a *correct* protocol under the same controller
//! runs to completion unimpeded.
//!
//! ```text
//! cargo run --example runaway_protocol
//! ```

use cost_sensitive::prelude::*;

/// The buggy protocol: echoes every message back, forever.
#[derive(Debug)]
struct Echo {
    initiator: bool,
}

impl Process for Echo {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        if self.initiator {
            let targets: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
            for u in targets {
                ctx.send(u, 0);
            }
        }
    }

    fn on_message(&mut self, from: NodeId, hops: u64, ctx: &mut Context<'_, u64>) {
        ctx.send(from, hops + 1); // bug: never stops
    }
}

/// A correct protocol: a one-shot flood.
#[derive(Debug)]
struct Flood {
    initiator: bool,
    reached: bool,
}

impl Process for Flood {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        if self.initiator {
            self.reached = true;
            let targets: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
            for u in targets {
                ctx.send(u, 0);
            }
        }
    }

    fn on_message(&mut self, _from: NodeId, _m: u64, ctx: &mut Context<'_, u64>) {
        if !self.reached {
            self.reached = true;
            let targets: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
            for u in targets {
                ctx.send(u, 0);
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::grid(4, 5, generators::WeightDist::Uniform(1, 6), 3);
    let p = CostParams::of(&g);
    // Correct flooding costs at most 2·Ê — that is the threshold c_π.
    let threshold = (p.total_weight * 2).get() as u64;
    println!("network: {p}");
    println!("threshold c_π = 2·Ê = {threshold}");
    println!();

    // 1. The naked runaway protocol never stops — the simulator's event
    //    budget has to kill it.
    let naked = Simulator::new(&g).event_limit(20_000).run(|v, _| Echo {
        initiator: v == NodeId::new(0),
    });
    println!(
        "naked Echo:      {:?}   (runs until the harness gives up)",
        naked.expect_err("echo never terminates")
    );

    // 2. Under the controller, the same protocol is cut off around c_π.
    for policy in [GrantPolicy::Naive, GrantPolicy::Caching] {
        let out = run_controlled(
            &g,
            NodeId::new(0),
            threshold,
            policy,
            DelayModel::WorstCase,
            0,
            |v, _| Echo {
                initiator: v == NodeId::new(0),
            },
        )?;
        println!(
            "controlled Echo  [{policy:?}]: suspended={} granted={} protocol-comm={} control-comm={}",
            out.suspended,
            out.granted,
            out.cost.comm_of(CostClass::Protocol),
            out.cost.comm_of(CostClass::Controller),
        );
        assert!(out.suspended);
    }
    println!();

    // 3. The correct protocol sails through under the same threshold.
    let out = run_controlled(
        &g,
        NodeId::new(0),
        threshold,
        GrantPolicy::Caching,
        DelayModel::WorstCase,
        0,
        |v, _| Flood {
            initiator: v == NodeId::new(0),
            reached: false,
        },
    )?;
    assert!(!out.suspended);
    assert!(out.states.iter().all(|f| f.reached));
    println!(
        "controlled Flood [Caching]: completed, suspended={} protocol-comm={} control-comm={}",
        out.suspended,
        out.cost.comm_of(CostClass::Protocol),
        out.cost.comm_of(CostClass::Controller),
    );
    println!();
    println!("Corollary 5.1: the controlled protocol keeps the semantics of");
    println!("correct executions and caps incorrect ones at O(c_π·log²c_π).");
    Ok(())
}
