//! Sensor-style aggregation: why the tree you convergecast over matters.
//!
//! A "sensor field" is modelled as a grid of cheap local links, plus a
//! few expensive uplinks that shortcut across the field. Computing a
//! global aggregate (say, the maximum reading and the total count)
//! requires one convergecast + broadcast — and Section 2 of the paper
//! shows the whole game is the spanning tree you run it over:
//!
//! * the shortest-path tree is *shallow* (fast) but may lean on the
//!   expensive uplinks (costly);
//! * the minimum spanning tree is *light* (cheap) but may be very deep
//!   (slow);
//! * the shallow-light tree is both, up to small constants.
//!
//! ```text
//! cargo run --example aggregate_network
//! ```

use cost_sensitive::prelude::*;

fn sensor_field() -> WeightedGraph {
    // 6×6 grid of weight-1..3 local links…
    let rows = 6;
    let cols = 6;
    let id = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.edge(id(r, c), id(r, c + 1), 1 + ((r * 7 + c) % 3) as u64);
            }
            if r + 1 < rows {
                b.edge(id(r, c), id(r + 1, c), 1 + ((r + c * 5) % 3) as u64);
            }
        }
    }
    // …plus four heavy diagonal uplinks.
    b.edge(id(0, 0), id(5, 5), 40);
    b.edge(id(0, 5), id(5, 0), 40);
    b.edge(id(0, 2), id(5, 3), 36);
    b.edge(id(2, 0), id(3, 5), 36);
    b.build().expect("valid sensor field")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = sensor_field();
    let p = CostParams::of(&g);
    println!("sensor field: {p}");
    println!();

    // Synthetic sensor readings.
    let readings: Vec<u64> = (0..g.node_count() as u64)
        .map(|i| (i * 97 + 13) % 256)
        .collect();
    let expected = fold_all(&Max, &readings);
    let base = NodeId::new(0);

    println!(
        "{:<14} {:>10} {:>8} {:>8}   bound",
        "tree", "comm", "msgs", "time"
    );
    for (name, kind) in [
        ("SPT", TreeKind::Spt),
        ("MST", TreeKind::Mst),
        ("BFS (hops)", TreeKind::Bfs),
        ("SLT (q=2)", TreeKind::Slt { q: 2 }),
    ] {
        let out = compute_global(&g, base, Max, &readings, kind, DelayModel::WorstCase)?;
        assert_eq!(out.value, expected);
        let bound = match kind {
            TreeKind::Slt { q } => format!(
                "comm ≤ 2(1+2/{q})·V̂ = {}, time ≤ 2({q}+1)·D̂ = {}",
                p.mst_weight * (2 * (q as u128 + 2) / q as u128),
                p.weighted_diameter * (2 * (q as u128 + 1)),
            ),
            _ => String::new(),
        };
        println!(
            "{:<14} {:>10} {:>8} {:>8}   {}",
            name, out.cost.weighted_comm, out.cost.messages, out.cost.completion, bound
        );
    }

    println!();
    println!("All four trees compute max = {expected}; only the SLT is");
    println!("simultaneously within a constant of the V̂ communication and");
    println!("D̂ time lower bounds (Theorem 2.1 / Corollary 2.3).");

    // The same machinery answers "how many sensors are alive?"
    let alive = compute_global(
        &g,
        base,
        Count,
        &readings,
        TreeKind::Slt { q: 2 },
        DelayModel::WorstCase,
    )?;
    println!();
    println!("census over the same SLT: {} sensors", alive.value);
    Ok(())
}
