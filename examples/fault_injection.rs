//! Fault injection: what message loss costs a retransmission layer.
//!
//! Runs `SPT_recur` wrapped in the simulator's `Reliable` ack/timeout
//! layer on the `gnp-n12` instance, then pits two adversaries against
//! it: the delay-only schedule search, and the same search with drop
//! injection enabled (`SearchConfig::drop_flips`). Dropping a message
//! forces the wrapper through a retransmission timeout, so a good drop
//! schedule pushes weighted completion strictly past anything delays
//! alone can do. The winning fault schedule is shrunk to a 1-minimal
//! witness and both schedules are written out:
//!
//! ```text
//! cargo run --release --example fault_injection [-- out_dir]
//! ```
//!
//! The committed `tests/schedules/reliable-spt-recur-gnp-n12.schedule`
//! and `tests/schedules/fault-spt-recur-gnp-n12.schedule` were produced
//! by this example (default out_dir `tests/schedules`); the
//! `fault_suite` integration tests replay them and pin the gap.

use csp_adversary::{
    find_worst_schedule, record, replay_report, shrink, Fallback, Schedule, ScheduleOracle,
    SearchConfig,
};
use csp_algo::spt::recur::SptRecur;
use csp_graph::generators::{self, WeightDist};
use csp_graph::{NodeId, WeightedGraph};
use csp_sim::{CostClass, Reliable, SimTime};
use std::path::PathBuf;

/// Retry bound for the wrapper: enough to survive any schedule the
/// search emits (drops are per-dispatch, not per-channel-forever).
const MAX_RETRIES: u32 = 3;

fn make(v: NodeId, _: &WeightedGraph) -> Reliable<SptRecur> {
    Reliable::new(SptRecur::new(v, NodeId::new(0), 1 << 40), MAX_RETRIES)
}

/// Best single-drop injection on top of `base`: replays `base` with each
/// decision in turn marked dropped and keeps the worst completion. A
/// deterministic fallback for when the randomized search fails to beat
/// the delay-only incumbent on its own.
fn inject_worst_drop(g: &WeightedGraph, base: &Schedule) -> (SimTime, Schedule) {
    let mut best: Option<(SimTime, Schedule)> = None;
    for i in 0..base.decisions.len() {
        let mut candidate = base.clone();
        candidate.decisions[i].dropped = true;
        let (run, recorded) = record(
            g,
            make,
            ScheduleOracle::new(&candidate),
            Fallback::WorstCase,
        );
        if best.as_ref().is_none_or(|(t, _)| run.cost.completion > *t) {
            best = Some((run.cost.completion, recorded));
        }
    }
    best.expect("schedule has at least one decision")
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("tests/schedules"), PathBuf::from);
    let g = generators::connected_gnp(12, 0.3, WeightDist::Uniform(1, 16), 42);

    let base = SearchConfig::builder()
        .random_probes(16)
        .hill_rounds(8)
        .candidates_per_round(8)
        .polish_passes(1);
    let cfg = base.build().expect("delay-only config is valid");

    println!("delay-only search over Reliable<SPT_recur> on gnp-n12 ...");
    let delay = find_worst_schedule(&g, make, &cfg);
    println!(
        "  worst-case {} -> searched {} (strategy: {}, {} evaluations)",
        delay.worst_case, delay.best_time, delay.strategy, delay.evaluations
    );

    println!("same search with drop injection (drop_flips = 2) ...");
    let faulty = find_worst_schedule(
        &g,
        make,
        &base.drop_flips(2).build().expect("drop config is valid"),
    );
    println!(
        "  searched {} with {} drops (strategy: {})",
        faulty.best_time,
        faulty.schedule.dropped_count(),
        faulty.strategy
    );

    // The drop search explores a superset of the delay space but walks a
    // different random path; if it failed to clear the delay-only bar,
    // force the issue with the best single injected drop.
    let (fault_time, fault_schedule) = if faulty.best_time > delay.best_time {
        (faulty.best_time, faulty.schedule)
    } else {
        println!("  (search did not clear the bar; injecting the worst single drop)");
        inject_worst_drop(&g, &delay.schedule)
    };
    assert!(
        fault_time > delay.best_time,
        "a dropped retransmission round must out-delay pure delays"
    );

    println!(
        "shrinking the fault witness against t > {} ...",
        delay.best_time
    );
    let (shrunk_time, shrunk) = shrink(&g, &make, &fault_schedule, |t| t > delay.best_time);
    println!(
        "  minimal witness: completion {} with {} drops, {} crashes",
        shrunk_time,
        shrunk.dropped_count(),
        shrunk.crashes.len()
    );

    // The weighted price of surviving the witness's drops: the same
    // schedule with its drop flags cleared, versus with them active.
    let mut undropped = shrunk.clone();
    for d in &mut undropped.decisions {
        d.dropped = false;
    }
    let (clean, _) = record(
        &g,
        make,
        ScheduleOracle::new(&undropped),
        Fallback::WorstCase,
    );
    let (lossy, report) = replay_report::<Reliable<SptRecur>, _>(&g, make, &shrunk);
    println!(
        "  auxiliary comm {} (same delays, no drops) -> {} (under drops)",
        clean.cost.comm_of(CostClass::Auxiliary),
        lossy.cost.comm_of(CostClass::Auxiliary)
    );
    let retransmissions: u64 = lossy.states.iter().map(|s| s.retransmissions()).sum();
    let failed_channels: usize = lossy.states.iter().map(|s| s.failed_channel_count()).sum();
    println!(
        "  fault meters: {} drops, {} crashed vertices, {} dead events, \
         {} retransmissions, {} abandoned channels, {} recoveries, \
         {} weight revisions",
        report.drops,
        report.crashed_nodes,
        report.dead_events,
        retransmissions,
        failed_channels,
        report.recoveries,
        report.weight_revisions
    );

    // The reachability contract, asserted explicitly rather than read
    // off completion times: every vertex of the surviving component
    // (the whole graph unless the witness crashes someone) must end up
    // holding a distance. A crash silently truncating output fails
    // loudly here.
    let mut dead = vec![false; g.node_count()];
    for c in &shrunk.crashes {
        dead[c.node.index()] = true;
    }
    let alive = csp_graph::algo::surviving_component(&g, NodeId::new(0), &dead);
    for v in g.nodes() {
        assert_eq!(
            lossy.states[v.index()].inner().dist().is_some(),
            alive[v.index()],
            "vertex {v} must be reached iff it survives connected to the root"
        );
    }
    println!(
        "  reachability contract holds: {} of {} vertices survive and hold distances",
        alive.iter().filter(|&&a| a).count(),
        g.node_count()
    );

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let delay_path = out_dir.join("reliable-spt-recur-gnp-n12.schedule");
    delay
        .schedule
        .save(
            &delay_path,
            &[
                "reliable-spt-recur on gnp-n12 (delay-only adversary)".to_string(),
                format!(
                    "worst-case {} < searched {} (strategy: {})",
                    delay.worst_case, delay.best_time, delay.strategy
                ),
            ],
        )
        .expect("write delay-only schedule");
    let fault_path = out_dir.join("fault-spt-recur-gnp-n12.schedule");
    shrunk
        .save(
            &fault_path,
            &[
                "reliable-spt-recur on gnp-n12 (drop adversary, shrunk)".to_string(),
                format!(
                    "best delay-only {} < with drops {} ({} drops)",
                    delay.best_time,
                    shrunk_time,
                    shrunk.dropped_count()
                ),
            ],
        )
        .expect("write fault schedule");
    println!(
        "wrote {} and {}",
        delay_path.display(),
        fault_path.display()
    );
}
