//! Running a synchronous protocol on an asynchronous network with
//! synchronizer γ_w (Section 4), and watching the clock synchronizers
//! α*/β*/γ* race (Section 3).
//!
//! ```text
//! cargo run --example synchronizer_demo
//! ```

use cost_sensitive::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1 — clock synchronization.
    // A light ring with heavy chords: d (max distance between neighbors)
    // is tiny while W (max edge weight) is huge. α* pays W per pulse; γ*
    // pays O(d·log²n).
    let g = generators::heavy_chord_cycle(16, 2_000);
    let p = CostParams::of(&g);
    println!("clock network: {p}");
    println!();
    println!(
        "{:<6} {:>12} {:>12} {:>12}",
        "sync", "pulse delay", "mean delay", "comm/pulse"
    );
    let pulses = 6;
    for (name, outcome) in [
        ("α*", run_alpha_star(&g, pulses, DelayModel::WorstCase, 0)?),
        (
            "β*",
            run_beta_star(&g, NodeId::new(0), pulses, DelayModel::WorstCase, 0)?,
        ),
        ("γ*", run_gamma_star(&g, pulses, DelayModel::WorstCase, 0)?),
    ] {
        println!(
            "{:<6} {:>12} {:>12.1} {:>12}",
            name,
            outcome.stats.max_pulse_delay(),
            outcome.stats.mean_pulse_delay(),
            outcome.cost.weighted_comm.get() / pulses as u128,
        );
    }
    println!();
    println!("lower bound Ω(d): d = {}", p.max_neighbor_distance);
    println!();

    // Part 2 — network synchronization.
    // The synchronous SPT protocol (time D̂, comm Ê on a synchronous
    // network) is written once against the lock-step semantics…
    let net = generators::connected_gnp(14, 0.2, generators::WeightDist::Uniform(1, 12), 7);
    let ideal = run_spt_synch_ideal(&net, NodeId::new(0));
    println!("synchronous SPT on the ideal network: {}", ideal.cost);

    // …and then runs unchanged on a fully asynchronous network, hosted by
    // synchronizer γ_w. Outputs are identical; the synchronizer's own
    // traffic is metered separately.
    for k in [2, 4, 8] {
        let hosted = run_spt_synch(&net, NodeId::new(0), k, DelayModel::Uniform, 1)?;
        assert_eq!(hosted.dists, ideal.dists, "γ_w must preserve outputs");
        println!(
            "under γ_w (k={k}):  total {}  [protocol {}, synchronizer {}]",
            hosted.cost,
            hosted.cost.comm_of(CostClass::Protocol),
            hosted.cost.comm_of(CostClass::Synchronizer),
        );
    }
    println!();
    println!("Same distances every time — Lemma 4.5's transformation keeps");
    println!("the hosted protocol's view identical to the synchronous run,");
    println!("while k trades synchronizer communication against time.");
    Ok(())
}
