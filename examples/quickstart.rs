//! Quickstart: build a weighted network, read off the paper's cost
//! parameters, and run a few protocols on it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cost_sensitive::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 6-vertex network: a light ring (the "backbone") plus one heavy
    // chord (an expensive long-haul link).
    let mut b = GraphBuilder::new(6);
    b.edge(0, 1, 1)
        .edge(1, 2, 1)
        .edge(2, 3, 1)
        .edge(3, 4, 1)
        .edge(4, 5, 1)
        .edge(5, 0, 1)
        .edge(0, 3, 10);
    let g = b.build()?;

    // The paper's weighted parameters.
    let p = CostParams::of(&g);
    println!("network: {g}");
    println!("parameters: {p}");
    println!();

    // 1. Flood a token from vertex 0 (CON_flood, §6.1): O(Ê) comm, O(D̂) time.
    let flood = run_flood(&g, NodeId::new(0), DelayModel::WorstCase, 0)?;
    println!("CON_flood:   {}", flood.cost);

    // 2. Depth-first search with root estimates (§6.2): O(Ê) comm & time.
    let dfs = run_dfs(&g, NodeId::new(0), DelayModel::WorstCase, 0)?;
    println!(
        "DFS:         {}  (exact traversal cost {}, root estimate {})",
        dfs.cost, dfs.traversal_cost, dfs.root_estimate
    );

    // 3. Global function over a shallow-light tree (§2): O(V̂) comm, O(D̂) time.
    let inputs = [3u64, 1, 4, 1, 5, 9];
    let out = compute_global(
        &g,
        NodeId::new(0),
        Max,
        &inputs,
        TreeKind::Slt { q: 2 },
        DelayModel::WorstCase,
    )?;
    println!(
        "global max:  {}  -> {} at every vertex (tree weight {})",
        out.cost,
        out.value,
        out.tree.weight()
    );

    // 4. The minimum spanning tree three ways (§6.3, §8).
    let ghs = run_mst_ghs(&g, NodeId::new(0), DelayModel::WorstCase, 0)?;
    let centr = run_mst_centr(&g, NodeId::new(0), DelayModel::WorstCase, 0)?;
    let hybrid = run_mst_hybrid(&g, NodeId::new(0), DelayModel::WorstCase, 0)?;
    println!("MST_ghs:     {}  (w(T) = {})", ghs.cost, ghs.tree.weight());
    println!("MST_centr:   {}", centr.cost);
    println!(
        "MST_hybrid:  {}  (winner: {:?})",
        hybrid.cost, hybrid.winner
    );

    // 5. Shortest-path tree from vertex 0 under the strip method (§9.2).
    let spt = run_spt_recur(&g, NodeId::new(0), 2, DelayModel::WorstCase, 0)?;
    println!(
        "SPT_recur:   {}  ({} strips, dist(v3) = {})",
        spt.cost, spt.strips, spt.dists[3]
    );

    Ok(())
}
