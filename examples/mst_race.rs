//! The MST algorithms race on the two adversarial regimes of Figure 3.
//!
//! * Regime A (`Ê ≪ n·V̂`): a long heavy path with a few light chords —
//!   the edge-frugal GHS wins.
//! * Regime B (`n·V̂ ≪ Ê`): the paper's lower-bound family `G_n`
//!   (Figure 7) — a light path buried under astronomically heavy bypass
//!   edges; the full-information `MST_centr` wins because it never pays
//!   for non-MST edges, and `MST_hybrid` tracks whichever is cheaper.
//!
//! ```text
//! cargo run --example mst_race
//! ```

use cost_sensitive::prelude::*;

fn race(name: &str, g: &WeightedGraph) -> Result<(), Box<dyn std::error::Error>> {
    let p = CostParams::of(g);
    let pivot = p.total_weight.min(p.mst_weight * p.n as u128);
    println!("── {name}");
    println!("   {p}");
    println!(
        "   bounds: Ê = {}, n·V̂ = {}, min = {pivot}",
        p.total_weight,
        p.mst_weight * p.n as u128
    );
    let root = NodeId::new(0);
    let ghs = run_mst_ghs(g, root, DelayModel::WorstCase, 0)?;
    let centr = run_mst_centr(g, root, DelayModel::WorstCase, 0)?;
    let fast = run_mst_fast(g, root, DelayModel::WorstCase, 0)?;
    let hybrid = run_mst_hybrid(g, root, DelayModel::WorstCase, 0)?;
    assert_eq!(ghs.tree.weight(), centr.tree.weight());
    assert_eq!(ghs.tree.weight(), fast.tree.weight());
    assert_eq!(ghs.tree.weight(), hybrid.tree.weight());
    println!("   {:<12} {:>12} {:>10}", "algorithm", "comm", "time");
    println!(
        "   {:<12} {:>12} {:>10}",
        "MST_ghs", ghs.cost.weighted_comm, ghs.cost.completion
    );
    println!(
        "   {:<12} {:>12} {:>10}",
        "MST_centr", centr.cost.weighted_comm, centr.cost.completion
    );
    println!(
        "   {:<12} {:>12} {:>10}",
        "MST_fast", fast.cost.weighted_comm, fast.cost.completion
    );
    println!(
        "   {:<12} {:>12} {:>10}   winner: {:?}",
        "MST_hybrid", hybrid.cost.weighted_comm, hybrid.cost.completion, hybrid.winner
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Regime A: heavy path + light chords → Ê small relative to n·V̂.
    let a = generators::sparse_heavy_path(28, 60, 11);
    race("regime A: sparse heavy path (GHS territory)", &a)?;

    // Regime B: the Figure-7 family → n·V̂ tiny relative to Ê.
    let b = generators::lower_bound_family(24, 16);
    race("regime B: lower-bound family G_n (MST_centr territory)", &b)?;

    // Bonus: where MST_fast shines — heavy internal edges that GHS must
    // reject one serial round-trip at a time.
    let c = generators::complete(16, |i, _| if i == 0 { 1 } else { 64 });
    race("regime C: star in a heavy clique (MST_fast time win)", &c)?;
    Ok(())
}
