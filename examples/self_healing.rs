//! Self-healing SPT versus a crash-*time* adversary.
//!
//! Runs the crash-tolerant distance-vector SPT (`Resilient` under the
//! `Detect` failure-detector transformer) on the `gnp-n12` instance and
//! searches for the most expensive moment to kill a vertex: crash
//! probes place each victim on a small time grid, then
//! `SearchConfig::crash_time_flips` makes the crash instant a
//! hill-climb coordinate. A well-timed crash lets the protocol finish
//! most of its work first, then forces a detection wait plus a
//! re-routing/re-parenting wave — strictly worse on weighted
//! completion than either the best delay-only schedule (no faults) or
//! a time-0 crash (the victim never participates, so nothing needs
//! healing). The winning schedule is shrunk to a 1-minimal witness
//! whose crash time is pushed to the *latest* violating tick, and both
//! schedules are written out:
//!
//! ```text
//! cargo run --release --example self_healing [-- out_dir]
//! ```
//!
//! The committed `tests/schedules/resilient-spt-gnp-n12.schedule`
//! (delay-only) and `tests/schedules/crash-resilient-spt-gnp-n12.schedule`
//! (crash witness) were produced by this example; the `resilient_suite`
//! integration tests replay them and pin the inequalities.

use csp_adversary::{
    find_worst_schedule, record, replay_report, shrink, Crash, Fallback, Schedule, ScheduleOracle,
    SearchConfig,
};
use csp_algo::resilient::{Metric, Resilient};
use csp_graph::generators::{self, WeightDist};

use csp_graph::{Cost, NodeId, WeightedGraph};
use csp_sim::{CostClass, Detect, DetectConfig, SimTime};
use std::path::PathBuf;

/// Failure-detector tuning: period 8 with 30 beats keeps the detection
/// horizon past tick 200 on this instance (max weight 16), so every
/// crash time the search explores is guaranteed to be noticed.
fn detector() -> DetectConfig {
    DetectConfig::new(8, 30, 0)
}

fn make(v: NodeId, g: &WeightedGraph) -> Detect<Resilient> {
    Detect::new(
        Resilient::new(v, NodeId::new(0), Metric::Weighted, g),
        detector(),
    )
}

/// Replays `base` with its crash plan replaced by `crashes` (worst-case
/// fallback past the recorded horizon) and re-records the transcript.
fn with_crashes(
    g: &WeightedGraph,
    base: &Schedule,
    crashes: Vec<Crash>,
) -> (SimTime, Cost, Schedule) {
    let mut candidate = base.clone();
    candidate.crashes = crashes;
    let (run, recorded) = record(
        g,
        make,
        ScheduleOracle::new(&candidate),
        Fallback::WorstCase,
    );
    (
        run.cost.completion,
        run.cost.comm_of(CostClass::Protocol),
        recorded,
    )
}

/// Deterministic fallback for when the randomized search fails to beat
/// the bar on its own: scan every victim over a coarse time grid on top
/// of the delay-only incumbent and keep the worst completion.
fn inject_worst_crash(g: &WeightedGraph, base: &Schedule) -> (SimTime, Schedule) {
    let mut best: Option<(SimTime, Schedule)> = None;
    for v in g.nodes().skip(1) {
        for at in (12..=212).step_by(24) {
            let (t, _, recorded) = with_crashes(g, base, vec![Crash { node: v, at }]);
            if best.as_ref().is_none_or(|(bt, _)| t > *bt) {
                best = Some((t, recorded));
            }
        }
    }
    best.expect("the grid is non-empty")
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("tests/schedules"), PathBuf::from);
    let g = generators::connected_gnp(12, 0.3, WeightDist::Uniform(1, 16), 42);

    let base = SearchConfig::builder()
        .random_probes(16)
        .hill_rounds(8)
        .candidates_per_round(8)
        .polish_passes(1);
    let cfg = base.build().expect("delay-only config is valid");

    println!("delay-only search over Detect<Resilient> (SPT) on gnp-n12 ...");
    let delay = find_worst_schedule(&g, make, &cfg);
    println!(
        "  worst-case {} -> searched {} (strategy: {}, {} evaluations)",
        delay.worst_case, delay.best_time, delay.strategy, delay.evaluations
    );

    println!("same search with crash probes and crash-time flips ...");
    let crashed = find_worst_schedule(
        &g,
        make,
        &base
            .crash_probes(g.node_count())
            .crash_time_flips(2)
            .build()
            .expect("crash config is valid"),
    );
    println!(
        "  searched {} with {} crash(es) (strategy: {})",
        crashed.best_time,
        crashed.schedule.crashes.len(),
        crashed.strategy
    );

    // The two baselines any crash witness must clear: the best fault-free
    // schedule, and the same victim dying at time 0 (it never joins the
    // computation, so the survivors just run the smaller instance). Keep
    // the witness away from the source: killing it forces a blanket
    // retraction, which hides the re-routing story the resilient stack
    // exists for.
    let interior = crashed
        .schedule
        .crashes
        .first()
        .is_some_and(|c| c.node != NodeId::new(0));
    let (candidate_time, candidate) = if interior {
        (crashed.best_time, crashed.schedule)
    } else {
        println!("  (search found no interior victim; scanning the victim/time grid)");
        inject_worst_crash(&g, &delay.schedule)
    };
    let victim = candidate.crashes[0].node;
    let (zero_time, _, _) = with_crashes(
        &g,
        &candidate,
        vec![Crash {
            node: victim,
            at: 0,
        }],
    );
    let (crash_free_time, _, _) = with_crashes(&g, &candidate, vec![]);
    let bar = delay.best_time.max(zero_time).max(crash_free_time);
    let (fault_time, fault_schedule) = if candidate_time > bar {
        (candidate_time, candidate)
    } else {
        println!("  (searched crash did not clear the bar; scanning the grid)");
        inject_worst_crash(&g, &delay.schedule)
    };
    assert!(
        fault_time > bar,
        "a well-timed crash must out-delay both the delay-only \
         schedule and a time-0 crash ({fault_time} vs bar {bar})"
    );

    println!("shrinking the crash witness against t > {bar} ...");
    let (mut shrunk_time, mut shrunk) = shrink(&g, &make, &fault_schedule, |t| t > bar);
    assert_eq!(shrunk.crashes.len(), 1, "the witness must keep its crash");
    println!(
        "  minimal witness: completion {} with vertex {} crashing at {}",
        shrunk_time, shrunk.crashes[0].node, shrunk.crashes[0].at
    );

    // The shrinker pushes the crash to the *latest* violating tick,
    // which can overshoot the detector's guarantee on the victim's
    // heaviest channel — a crash after the last heartbeat a channel
    // still polices goes unnoticed there, leaving a stale route and
    // breaking the healing contract. Pull it back inside the
    // guaranteed-detection window; the recovery wave it triggers still
    // lands past the bar.
    let witness_victim = shrunk.crashes[0].node;
    let horizon = g
        .neighbors(witness_victim)
        .map(|(_, _, w)| detector().detection_horizon(w.get()))
        .min()
        .expect("the victim has neighbors");
    if shrunk.crashes[0].at > horizon {
        let clamped = with_crashes(
            &g,
            &shrunk,
            vec![Crash {
                node: witness_victim,
                at: horizon,
            }],
        );
        assert!(
            clamped.0 > bar,
            "the latest guaranteed-detected crash must still clear the \
             bar ({} vs {bar})",
            clamped.0
        );
        (shrunk_time, shrunk) = (clamped.0, clamped.2);
        println!("  crash clamped to the detection horizon {horizon}: completion {shrunk_time}");
    }

    // The recovery bill, isolated: the same transcript with the crash
    // moved to time 0 heals nothing, so the weighted announcement
    // traffic it saves is exactly what the well-timed crash forces.
    let (late_time, late_protocol, _) = with_crashes(&g, &shrunk, shrunk.crashes.clone());
    let (zero_time, zero_protocol, _) = with_crashes(
        &g,
        &shrunk,
        vec![Crash {
            node: witness_victim,
            at: 0,
        }],
    );
    println!(
        "  weighted recovery traffic: crash at {} costs protocol comm {} \
         (completion {}) vs {} (completion {}) for a time-0 crash",
        shrunk.crashes[0].at, late_protocol, late_time, zero_protocol, zero_time
    );
    assert!(
        late_protocol > zero_protocol,
        "a well-timed crash must force measurably more recovery traffic"
    );

    // The witness replays faithfully, and the report surfaces what the
    // adversary actually did to the run.
    let (_, report) = replay_report::<Detect<Resilient>, _>(&g, make, &shrunk);
    assert_eq!(report.divergences, 0, "the witness must replay exactly");
    println!(
        "  fault meters: {} drops, {} crashed vertices, {} dead events",
        report.drops, report.crashed_nodes, report.dead_events
    );

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let delay_path = out_dir.join("resilient-spt-gnp-n12.schedule");
    delay
        .schedule
        .save(
            &delay_path,
            &[
                "resilient-spt on gnp-n12 (delay-only adversary)".to_string(),
                format!(
                    "worst-case {} < searched {} (strategy: {})",
                    delay.worst_case, delay.best_time, delay.strategy
                ),
            ],
        )
        .expect("write delay-only schedule");
    let crash_path = out_dir.join("crash-resilient-spt-gnp-n12.schedule");
    shrunk
        .save(
            &crash_path,
            &[
                "resilient-spt on gnp-n12 (crash-time adversary, shrunk)".to_string(),
                format!(
                    "bar {} (delay-only {}, time-0 crash {}) < with crash {}",
                    bar, delay.best_time, zero_time, shrunk_time
                ),
            ],
        )
        .expect("write crash schedule");
    println!(
        "wrote {} and {}",
        delay_path.display(),
        crash_path.display()
    );
}
