//! Self-healing SPT versus a crash-*time* adversary.
//!
//! Runs the crash-tolerant distance-vector SPT (`Resilient` under the
//! `Detect` failure-detector transformer) on the `gnp-n12` instance and
//! searches for the most expensive moment to kill a vertex: crash
//! probes place each victim on a small time grid, then
//! `SearchConfig::crash_time_flips` makes the crash instant a
//! hill-climb coordinate. A well-timed crash lets the protocol finish
//! most of its work first, then forces a detection wait plus a
//! re-routing/re-parenting wave — strictly worse on weighted
//! completion than either the best delay-only schedule (no faults) or
//! a time-0 crash (the victim never participates, so nothing needs
//! healing). The winning schedule is shrunk to a 1-minimal witness
//! whose crash time is pushed to the *latest* violating tick, and both
//! schedules are written out:
//!
//! ```text
//! cargo run --release --example self_healing [-- out_dir]
//! ```
//!
//! A churn phase then goes beyond crash-stop: the same victim is
//! crashed, *rejoined* (fresh state — the survivors pay `Auxiliary`
//! re-announcement traffic to pull the blank incarnation back into the
//! Bellman fixpoint), and crashed again, forcing the detection-plus-
//! healing bill twice. The chain grid honours the detector's contract
//! (the rejoin waits out the victim's largest channel `θ(e)`, the
//! recrash stays inside the guaranteed-detection window — anchored at
//! its boundary, exactly where the clamped single-crash witness sits),
//! and the winning chain must strictly out-bill the single-crash
//! witness on weighted protocol traffic: completion alone cannot
//! separate them, because both final crashes heal on the same
//! detection clock.
//!
//! The committed `tests/schedules/resilient-spt-gnp-n12.schedule`
//! (delay-only), `tests/schedules/crash-resilient-spt-gnp-n12.schedule`
//! (crash witness) and
//! `tests/schedules/churn-resilient-spt-gnp-n12.schedule`
//! (crash–rejoin–recrash witness) were produced by this example; the
//! `resilient_suite` and `churn_suite` integration tests replay them
//! and pin the inequalities.

use csp_adversary::{
    find_worst_schedule, record, replay_report, shrink, Crash, Fallback, Rejoin, Schedule,
    ScheduleOracle, SearchConfig,
};
use csp_algo::resilient::{reconvergence_violation, Metric, Resilient, ResilientOutcome};
use csp_graph::generators::{self, WeightDist};

use csp_graph::{Cost, NodeId, WeightedGraph};
use csp_sim::{CostClass, Detect, DetectConfig, SimTime};
use std::path::PathBuf;

/// Failure-detector tuning: period 8 with 30 beats keeps the detection
/// horizon past tick 200 on this instance (max weight 16), so every
/// crash time the search explores is guaranteed to be noticed.
fn detector() -> DetectConfig {
    DetectConfig::new(8, 30, 0)
}

fn make(v: NodeId, g: &WeightedGraph) -> Detect<Resilient> {
    Detect::new(
        Resilient::new(v, NodeId::new(0), Metric::Weighted, g),
        detector(),
    )
}

/// Replays `base` with its crash plan replaced by `crashes` (worst-case
/// fallback past the recorded horizon) and re-records the transcript.
fn with_crashes(
    g: &WeightedGraph,
    base: &Schedule,
    crashes: Vec<Crash>,
) -> (SimTime, Cost, Schedule) {
    let mut candidate = base.clone();
    candidate.crashes = crashes;
    let (run, recorded) = record(
        g,
        make,
        ScheduleOracle::new(&candidate),
        Fallback::WorstCase,
    );
    (
        run.cost.completion,
        run.cost.comm_of(CostClass::Protocol),
        recorded,
    )
}

/// Replays `base` with `victim`'s churn chain replaced by `chain`
/// (alternating crash/rejoin times, strictly increasing) and re-records
/// the transcript.
fn with_churn(
    g: &WeightedGraph,
    base: &Schedule,
    victim: NodeId,
    chain: &[u64],
) -> (SimTime, Cost, Schedule) {
    let mut candidate = base.clone();
    candidate.crashes.retain(|c| c.node != victim);
    candidate.rejoins.retain(|r| r.node != victim);
    for (i, &at) in chain.iter().enumerate() {
        if i % 2 == 0 {
            candidate.crashes.push(Crash { node: victim, at });
        } else {
            candidate.rejoins.push(Rejoin { node: victim, at });
        }
    }
    let (run, recorded) = record(
        g,
        make,
        ScheduleOracle::new(&candidate),
        Fallback::WorstCase,
    );
    (
        run.cost.completion,
        run.cost.comm_of(CostClass::Protocol),
        recorded,
    )
}

/// Deterministic fallback for when the randomized search fails to beat
/// the bar on its own: scan every victim over a coarse time grid on top
/// of the delay-only incumbent and keep the worst completion.
fn inject_worst_crash(g: &WeightedGraph, base: &Schedule) -> (SimTime, Schedule) {
    let mut best: Option<(SimTime, Schedule)> = None;
    for v in g.nodes().skip(1) {
        for at in (12..=212).step_by(24) {
            let (t, _, recorded) = with_crashes(g, base, vec![Crash { node: v, at }]);
            if best.as_ref().is_none_or(|(bt, _)| t > *bt) {
                best = Some((t, recorded));
            }
        }
    }
    best.expect("the grid is non-empty")
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("tests/schedules"), PathBuf::from);
    let g = generators::connected_gnp(12, 0.3, WeightDist::Uniform(1, 16), 42);

    let base = SearchConfig::builder()
        .random_probes(16)
        .hill_rounds(8)
        .candidates_per_round(8)
        .polish_passes(1);
    let cfg = base.build().expect("delay-only config is valid");

    println!("delay-only search over Detect<Resilient> (SPT) on gnp-n12 ...");
    let delay = find_worst_schedule(&g, make, &cfg);
    println!(
        "  worst-case {} -> searched {} (strategy: {}, {} evaluations)",
        delay.worst_case, delay.best_time, delay.strategy, delay.evaluations
    );

    println!("same search with crash probes and crash-time flips ...");
    let crashed = find_worst_schedule(
        &g,
        make,
        &base
            .crash_probes(g.node_count())
            .crash_time_flips(2)
            .build()
            .expect("crash config is valid"),
    );
    println!(
        "  searched {} with {} crash(es) (strategy: {})",
        crashed.best_time,
        crashed.schedule.crashes.len(),
        crashed.strategy
    );

    // The two baselines any crash witness must clear: the best fault-free
    // schedule, and the same victim dying at time 0 (it never joins the
    // computation, so the survivors just run the smaller instance). Keep
    // the witness away from the source: killing it forces a blanket
    // retraction, which hides the re-routing story the resilient stack
    // exists for.
    let interior = crashed
        .schedule
        .crashes
        .first()
        .is_some_and(|c| c.node != NodeId::new(0));
    let (candidate_time, candidate) = if interior {
        (crashed.best_time, crashed.schedule)
    } else {
        println!("  (search found no interior victim; scanning the victim/time grid)");
        inject_worst_crash(&g, &delay.schedule)
    };
    let victim = candidate.crashes[0].node;
    let (zero_time, _, _) = with_crashes(
        &g,
        &candidate,
        vec![Crash {
            node: victim,
            at: 0,
        }],
    );
    let (crash_free_time, _, _) = with_crashes(&g, &candidate, vec![]);
    let bar = delay.best_time.max(zero_time).max(crash_free_time);
    let (fault_time, fault_schedule) = if candidate_time > bar {
        (candidate_time, candidate)
    } else {
        println!("  (searched crash did not clear the bar; scanning the grid)");
        inject_worst_crash(&g, &delay.schedule)
    };
    assert!(
        fault_time > bar,
        "a well-timed crash must out-delay both the delay-only \
         schedule and a time-0 crash ({fault_time} vs bar {bar})"
    );

    println!("shrinking the crash witness against t > {bar} ...");
    let (mut shrunk_time, mut shrunk) = shrink(&g, &make, &fault_schedule, |t| t > bar);
    assert_eq!(shrunk.crashes.len(), 1, "the witness must keep its crash");
    println!(
        "  minimal witness: completion {} with vertex {} crashing at {}",
        shrunk_time, shrunk.crashes[0].node, shrunk.crashes[0].at
    );

    // The shrinker pushes the crash to the *latest* violating tick,
    // which can overshoot the detector's guarantee on the victim's
    // heaviest channel — a crash after the last heartbeat a channel
    // still polices goes unnoticed there, leaving a stale route and
    // breaking the healing contract. Pull it back inside the
    // guaranteed-detection window; the recovery wave it triggers still
    // lands past the bar.
    let witness_victim = shrunk.crashes[0].node;
    let horizon = g
        .neighbors(witness_victim)
        .map(|(_, _, w)| detector().detection_horizon(w.get()))
        .min()
        .expect("the victim has neighbors");
    if shrunk.crashes[0].at > horizon {
        let clamped = with_crashes(
            &g,
            &shrunk,
            vec![Crash {
                node: witness_victim,
                at: horizon,
            }],
        );
        assert!(
            clamped.0 > bar,
            "the latest guaranteed-detected crash must still clear the \
             bar ({} vs {bar})",
            clamped.0
        );
        (shrunk_time, shrunk) = (clamped.0, clamped.2);
        println!("  crash clamped to the detection horizon {horizon}: completion {shrunk_time}");
    }

    // The recovery bill, isolated: the same transcript with the crash
    // moved to time 0 heals nothing, so the weighted announcement
    // traffic it saves is exactly what the well-timed crash forces.
    let (late_time, late_protocol, _) = with_crashes(&g, &shrunk, shrunk.crashes.clone());
    let (zero_time, zero_protocol, _) = with_crashes(
        &g,
        &shrunk,
        vec![Crash {
            node: witness_victim,
            at: 0,
        }],
    );
    println!(
        "  weighted recovery traffic: crash at {} costs protocol comm {} \
         (completion {}) vs {} (completion {}) for a time-0 crash",
        shrunk.crashes[0].at, late_protocol, late_time, zero_protocol, zero_time
    );
    assert!(
        late_protocol > zero_protocol,
        "a well-timed crash must force measurably more recovery traffic"
    );

    // The witness replays faithfully, and the report surfaces what the
    // adversary actually did to the run.
    let (_, report) = replay_report::<Detect<Resilient>, _>(&g, make, &shrunk);
    assert_eq!(report.divergences, 0, "the witness must replay exactly");
    println!(
        "  fault meters: {} drops, {} crashed vertices, {} dead events, \
         {} recoveries, {} weight revisions",
        report.drops,
        report.crashed_nodes,
        report.dead_events,
        report.recoveries,
        report.weight_revisions
    );

    // Churn beyond crash-stop: crash the victim, rejoin it, crash it
    // again. The rejoin resurrects a *blank* incarnation the survivors
    // must re-sync (Auxiliary traffic), and the recrash forces the
    // whole detection-plus-healing bill a second time — strictly worse
    // than any single crash of the same victim. The chain grid honours
    // the detector's contract: the rejoin waits out the victim's
    // largest channel θ(e) (every neighbor suspects before the
    // resurrection) and the recrash stays inside the
    // guaranteed-detection window.
    let theta_max = g
        .neighbors(witness_victim)
        .map(|(_, _, w)| detector().theta(w.get()))
        .max()
        .expect("the victim has neighbors");
    println!(
        "churn search: crash-rejoin-recrash chains on vertex {} \
         (theta_max {theta_max}, horizon {horizon}) ...",
        witness_victim
    );
    // Both the witness crash and the chain's recrash are capped by the
    // same guaranteed-detection window, so completion alone cannot
    // separate them — the surviving component heals the final crash on
    // the same clock either way. The chain's signature is *cost*: the
    // first heal, the rejoin-era re-synchronisation and the second heal
    // all bill weighted announcement traffic the single crash never
    // pays. Anchor the recrash at the detection horizon (the most
    // expensive admissible instant, exactly like the clamped witness)
    // and pick the chain maximizing weighted protocol comm.
    let mut best_churn: Option<(Cost, SimTime, Schedule)> = None;
    for c2 in [horizon, horizon - 8, horizon - 16] {
        for gap2 in [24, 48, 72] {
            for gap1 in [theta_max + 1, theta_max + 17, theta_max + 33] {
                let Some(rejoin_at) = c2.checked_sub(gap2) else {
                    continue;
                };
                let Some(c1) = rejoin_at.checked_sub(gap1) else {
                    continue;
                };
                if c1 == 0 {
                    continue; // a time-0 crash heals nothing
                }
                let (t, comm, recorded) =
                    with_churn(&g, &shrunk, witness_victim, &[c1, rejoin_at, c2]);
                if best_churn.as_ref().is_none_or(|(bc, _, _)| comm > *bc) {
                    best_churn = Some((comm, t, recorded));
                }
            }
        }
    }
    let (churn_comm, churn_time, churn_schedule) = best_churn.expect("the churn grid is non-empty");
    let churn_chain = churn_schedule.churn_of(witness_victim);
    println!(
        "  best chain {churn_chain:?}: protocol comm {churn_comm} \
         (completion {churn_time}) vs single-crash witness {late_protocol} \
         (completion {shrunk_time})"
    );
    assert!(
        churn_comm > late_protocol,
        "crash-rejoin-recrash must out-bill the best single-crash \
         witness on weighted announcement traffic ({churn_comm} vs \
         {late_protocol})"
    );

    // The churn witness replays faithfully, its meters record the
    // recovery, and the healed run still satisfies the reconvergence
    // contract: exact surviving-component routes, settled within the
    // detector-derived horizon of the *last* churn event.
    let (churn_run, churn_report) =
        replay_report::<Detect<Resilient>, _>(&g, make, &churn_schedule);
    assert_eq!(
        churn_report.divergences, 0,
        "the witness must replay exactly"
    );
    assert!(
        churn_report.has_churn(),
        "the witness churns beyond crash-stop"
    );
    println!(
        "  churn meters: {} recoveries, {} weight revisions, auxiliary \
         re-announcement comm {}",
        churn_report.recoveries,
        churn_report.weight_revisions,
        churn_run.cost.comm_of(CostClass::Auxiliary)
    );
    let mut dead = vec![false; g.node_count()];
    dead[witness_victim.index()] = true;
    let churn_out = ResilientOutcome {
        dists: churn_run.states.iter().map(|s| s.inner().dist()).collect(),
        parents: churn_run
            .states
            .iter()
            .map(|s| s.inner().parent())
            .collect(),
        suspected_links: churn_run
            .states
            .iter()
            .map(|s| s.inner().dead_neighbor_count())
            .sum(),
        restored_links: churn_run
            .states
            .iter()
            .map(|s| s.inner().restored_count())
            .sum(),
        retransmissions: 0,
        failed_channels: 0,
        cost: churn_run.cost.clone(),
    };
    let last_churn = *churn_chain.last().expect("the chain is non-empty");
    let max_w = g.max_weight().get();
    assert_eq!(
        reconvergence_violation(
            &g,
            NodeId::new(0),
            Metric::Weighted,
            &dead,
            SimTime::new(last_churn),
            detector().detection_horizon(max_w),
            &churn_out
        ),
        None,
        "the churned run must reconverge to exact surviving-component \
         routes within the detection horizon of the last churn event"
    );

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let delay_path = out_dir.join("resilient-spt-gnp-n12.schedule");
    delay
        .schedule
        .save(
            &delay_path,
            &[
                "resilient-spt on gnp-n12 (delay-only adversary)".to_string(),
                format!(
                    "worst-case {} < searched {} (strategy: {})",
                    delay.worst_case, delay.best_time, delay.strategy
                ),
            ],
        )
        .expect("write delay-only schedule");
    let crash_path = out_dir.join("crash-resilient-spt-gnp-n12.schedule");
    shrunk
        .save(
            &crash_path,
            &[
                "resilient-spt on gnp-n12 (crash-time adversary, shrunk)".to_string(),
                format!(
                    "bar {} (delay-only {}, time-0 crash {}) < with crash {}",
                    bar, delay.best_time, zero_time, shrunk_time
                ),
            ],
        )
        .expect("write crash schedule");
    let churn_path = out_dir.join("churn-resilient-spt-gnp-n12.schedule");
    churn_schedule
        .save(
            &churn_path,
            &[
                "resilient-spt on gnp-n12 (crash-rejoin-recrash adversary)".to_string(),
                format!(
                    "single-crash protocol comm {} < with churn chain {:?}: {} \
                     (completion {} vs {})",
                    late_protocol, churn_chain, churn_comm, churn_time, shrunk_time
                ),
                format!(
                    "{} recoveries, auxiliary re-sync comm {}",
                    churn_report.recoveries,
                    churn_run.cost.comm_of(CostClass::Auxiliary)
                ),
            ],
        )
        .expect("write churn schedule");
    println!(
        "wrote {}, {} and {}",
        delay_path.display(),
        crash_path.display(),
        churn_path.display()
    );
}
