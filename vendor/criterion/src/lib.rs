#![deny(missing_docs)]

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this in-repo
//! crate provides a minimal wall-clock benchmarking harness exposing the
//! API subset the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed samples
//! of an adaptively chosen iteration count, and prints the median
//! nanoseconds per iteration. No plots, no statistics files — just
//! reproducible numbers on stdout.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Drives timed iterations of one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times repeated executions of `body`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up and per-iteration estimate.
        let start = Instant::now();
        std::hint::black_box(body());
        let estimate = start.elapsed().max(Duration::from_nanos(1));
        // Aim each sample at ~5ms of work, capped for slow bodies.
        let iters = (Duration::from_millis(5).as_nanos() / estimate.as_nanos()).clamp(1, 10_000);
        self.samples.clear();
        for _ in 0..self.sample_size.max(3) {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(body());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    fn median_ns(&mut self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.samples[self.samples.len() / 2]
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.label, &mut b);
        self
    }

    /// Benchmarks a parameterless function.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&name.to_string(), &mut b);
        self
    }

    fn report(&self, label: &str, b: &mut Bencher) {
        println!("{}/{label}: {:.0} ns/iter", self.name, b.median_ns());
    }

    /// Ends the group (kept for API parity; reporting is incremental).
    pub fn finish(self) {}
}

/// The top-level benchmark harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Re-export of [`std::hint::black_box`] for API parity.
pub use std::hint::black_box;

/// Bundles benchmark functions under one name for [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the given [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("noop", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("ghs", 32).to_string(), "ghs/32");
    }
}
