#![deny(missing_docs)]

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this in-repo
//! crate provides the (small) subset of the `rand` API the workspace
//! uses: a seedable deterministic generator ([`rngs::StdRng`]), the
//! [`SeedableRng`] construction trait, and the [`RngExt`] extension
//! methods `random_range` / `random_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction family `rand` itself recommends for reproducible
//! simulation work. All sampling is fully deterministic per seed and
//! identical across platforms, which the simulator's reproducibility
//! tests rely on.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with SplitMix64 seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo <= hi);
    let span = hi.wrapping_sub(lo).wrapping_add(1);
    if span == 0 {
        // Full 64-bit range.
        return rng.next_u64();
    }
    // Multiply-shift mapping: deterministic, branch-free, and unbiased
    // far beyond the span sizes used in this workspace.
    lo + (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                uniform_u64(rng, self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                uniform_u64(rng, lo as u64, hi as u64) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // 53 uniform mantissa bits, the standard conversion.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    #[inline]
    fn random_unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..=u64::MAX),
                b.random_range(0u64..=u64::MAX)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..1_000_000u64)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..1_000_000u64)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.random_range(5u64..=9);
            assert!((5..=9).contains(&x));
            let y = rng.random_range(0usize..4);
            assert!(y < 4);
            let z = rng.random_range(0u32..=6);
            assert!(z <= 6);
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads={heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5u64..5);
    }
}
