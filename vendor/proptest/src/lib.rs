#![deny(missing_docs)]

//! Offline stand-in for the `proptest` crate.
//!
//! Provides deterministic, seeded property-based testing with the API
//! subset this workspace uses: the [`Strategy`] trait with `prop_map`,
//! range and tuple strategies, [`any`], the [`proptest!`] macro, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case
//! reports its case index and seed so it can be replayed exactly (the
//! generator is a pure function of the test name and case index).

use rand::rngs::StdRng;
use rand::RngExt;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// A failed property-test case (carried by `prop_assert!`-style macros).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Execution parameters for a [`proptest!`] block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value from the seeded generator.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + rng.random_unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngCore;
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngCore;
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Derives the per-case generator: a pure function of test name and
/// case index, so failures replay exactly.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn prop(x in 0u64..10, y in any::<bool>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_run(
                    stringify!($name),
                    $cfg,
                    |__rng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                        let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                        __result
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Runs one property across all cases (used by [`proptest!`]).
pub fn __proptest_run(
    name: &str,
    cfg: ProptestConfig,
    mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
) {
    for i in 0..cfg.cases {
        let mut rng = case_rng(name, i);
        if let Err(e) = case(&mut rng) {
            panic!("property {name} failed at case {i}/{}: {e}", cfg.cases);
        }
    }
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the enclosing property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the enclosing property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// The commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..=9, y in 0usize..5, z in 0.0f64..1.0) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn prop_map_applies(v in (1u64..=4, 1u64..=4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..=16).contains(&v));
            prop_assert_eq!(v, v);
        }

        #[test]
        fn any_generates(x in any::<u64>(), b in any::<bool>()) {
            // touch both to ensure generation happened
            let _ = (x, b);
            prop_assert!(true);
        }
    }

    #[test]
    fn cases_are_reproducible() {
        use crate::Strategy;
        let s = 0u64..=1_000_000;
        let a: Vec<u64> = (0..10)
            .map(|i| s.generate(&mut crate::case_rng("t", i)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|i| s.generate(&mut crate::case_rng("t", i)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        crate::__proptest_run("always_fails", ProptestConfig::with_cases(3), |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
